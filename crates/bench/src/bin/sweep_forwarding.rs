//! Ablation D: dead register analysis (Breach et al. \[3\], thesis \[18\]).
//! The Multiscalar compiler forwards only registers *live out* of a task
//! on the communication ring; naive hardware would forward every written
//! register, wasting the ring's 2 values/cycle and delaying the values
//! consumers actually wait for.
//!
//! ```text
//! cargo run -p ms-bench --release --bin sweep_forwarding
//! ```

use ms_sim::{SimConfig, Simulator};
use ms_tasksel::TaskSelector;
use ms_trace::TraceGenerator;
use ms_workloads::by_name;

fn main() {
    println!("Ablation: dead register analysis for ring forwards (dd tasks, 8 PUs)");
    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "bench", "IPC dead", "IPC naive", "fwd/task d", "fwd/task n", "IPC gain"
    );
    for name in ["m88ksim", "perl", "tomcatv", "applu", "wave5", "go"] {
        let w = by_name(name).expect("known benchmark");
        let program = w.build();
        let sel = TaskSelector::data_dependence(4).select(&program);
        let trace = TraceGenerator::new(&sel.program, ms_bench::DEFAULT_SEED).generate(60_000);
        let dead = Simulator::new(SimConfig::eight_pu(), &sel.program, &sel.partition).run(&trace);
        let naive = Simulator::new(
            SimConfig::eight_pu().without_dead_reg_analysis(),
            &sel.program,
            &sel.partition,
        )
        .run(&trace);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>12.1} {:>12.1} {:>8.1}%",
            name,
            dead.ipc(),
            naive.ipc(),
            dead.forwards_per_task(),
            naive.forwards_per_task(),
            100.0 * (dead.ipc() - naive.ipc()) / naive.ipc(),
        );
    }
    println!("\n(dead register analysis must never forward MORE values than naive");
    println!(" forwarding; the IPC gain comes from freed ring bandwidth)");
}
