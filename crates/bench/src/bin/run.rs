//! The experiment driver: every sweep behind the paper's figures and
//! tables, ad-hoc single runs, event traces, and pipeline profiling,
//! from one binary. `run -- help` lists every subcommand with the
//! schema version of the artifact it writes.
//!
//! Sweep mode (parallel, writes JSON metrics artifacts — see
//! `EXPERIMENTS.md` for the schema):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- sweeps --jobs 8
//! cargo run -p ms-bench --release --bin run -- figure5
//! cargo run -p ms-bench --release --bin run -- hardware --jobs 4 --out /tmp/exp
//! ```
//!
//! Single-run mode (any benchmark × heuristic × machine):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- compress --strategy ts --pus 8
//! cargo run -p ms-bench --release --bin run -- all --strategy cf --in-order
//! ```
//!
//! Trace mode (one run with the event trace on — see `docs/TRACING.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- trace compress
//! ```
//!
//! Perf mode (pipeline self-profiling and the regression gate — see
//! `docs/PROFILING.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- perf
//! cargo run -p ms-bench --release --bin run -- perf --baseline best
//! cargo run -p ms-bench --release --bin run -- perf --baseline BENCH_old.json
//! cargo run -p ms-bench --release --bin run -- perf-validate BENCH_abc1234.json
//! ```
//!
//! Perf-history mode (the whole trajectory: trend table, dashboard,
//! cumulative-drift gate — see `docs/PERF-HISTORY.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- perf-history
//! ```
//!
//! Fuzz mode (differential conformance — see `docs/CONFORMANCE.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- fuzz --seeds 500
//! ```
//!
//! Gap mode (heuristics vs the exact-partition oracle — see
//! `docs/POLICIES.md`, which also documents `run -- policies`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- gap li
//! cargo run -p ms-bench --release --bin run -- gap all --oracle-max-blocks 12
//! ```
//!
//! All flags live in `ms_bench::cli` and are shared across subcommands
//! (`--out DIR`, `--jobs N`, `--strategy`, `--reps`, …).

use std::path::Path;

use ms_analysis::ProgramContext;
use ms_bench::cli::{self, Flags};
use ms_bench::error::closest;
use ms_bench::fuzzcmd;
use ms_bench::gapcmd::{self, GapOptions};
use ms_bench::historycmd::{self, BaselineEntry};
use ms_bench::perfcmd::{self, PerfOptions};
use ms_bench::sweeps::{run_sweep, SweepSpec, SWEEP_NAMES};
use ms_bench::tracecmd::trace_selection;
use ms_bench::{run_selection, BenchError, DEFAULT_TRACE_INSTS};
use ms_conform::FuzzParams;
use ms_ir::Program;
use ms_sim::SimConfig;
use ms_workloads::{by_name, suite};

fn sim_config(flags: &Flags) -> SimConfig {
    let mut cfg = SimConfig::with_pus(flags.pus);
    if flags.in_order {
        cfg = cfg.in_order();
    }
    if !flags.dead_reg {
        cfg = cfg.without_dead_reg_analysis();
    }
    cfg
}

fn run_one(name: &str, program: Program, flags: &Flags) {
    let sel = flags.strategy.selector(flags.targets).select(&ProgramContext::new(program));
    if flags.dump_ir {
        print!("{}", ms_ir::write_program(&sel.program));
        return;
    }
    let insts = flags.insts.unwrap_or(DEFAULT_TRACE_INSTS);
    let stats = run_selection(&sel, sim_config(flags), insts, flags.seed);
    if flags.json {
        println!(
            "{{\"bench\":\"{name}\",\"strategy\":\"{}\",\"stats\":{}}}",
            flags.strategy.label(),
            stats.to_json()
        );
        return;
    }
    println!(
        "── {name} [{}] {} PUs {} ──",
        flags.strategy.label(),
        flags.pus,
        if flags.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{stats}");
}

fn unknown_benchmark(name: &str) -> ! {
    // The name could be a misspelled sweep just as well as a misspelled
    // benchmark — suggest the nearest match from either namespace.
    if let Some(s) = closest(name, &SWEEP_NAMES) {
        let e = BenchError::UnknownSweep { name: name.to_string(), suggestion: Some(s) };
        eprintln!("error: {e}");
    } else {
        let benches: Vec<&'static str> = suite().iter().map(|w| w.name).collect();
        let e = BenchError::UnknownBenchmark {
            name: name.to_string(),
            suggestion: closest(name, &benches),
        };
        eprintln!("error: {e}");
    }
    eprintln!("(`run -- list` enumerates benchmarks and sweeps; see `run -- help`)");
    std::process::exit(2);
}

/// `run -- fuzz`: the differential conformance fuzz loop (see
/// `docs/CONFORMANCE.md`), minimal repros written under `<out>/fuzz/`.
fn run_fuzz(flags: &Flags) {
    let params = FuzzParams {
        max_blocks: flags.max_blocks,
        insts: flags.insts.unwrap_or(FuzzParams::default().insts),
        inject: flags.inject,
    };
    let report = fuzzcmd::run_fuzz(flags.seeds, flags.seed, &params, flags.jobs, &flags.out);
    for (path, body) in &report.artifacts {
        write_or_die(path, body);
    }
    print!("{}", report.text);
    if !report.failures.is_empty() {
        std::process::exit(1);
    }
}

fn write_or_die(path: &Path, body: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// `run -- gap <benchmark> | all`: the heuristic-vs-optimal table (see
/// `docs/POLICIES.md`).
fn run_gap(bench: &str, flags: &Flags) {
    let opts = GapOptions {
        targets: flags.targets,
        oracle_max_blocks: flags.oracle_max_blocks,
        insts: flags.insts.unwrap_or(DEFAULT_TRACE_INSTS),
        seed: flags.seed,
        config: sim_config(flags),
    };
    if bench == "all" {
        for (i, w) in suite().iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", gapcmd::run_gap(w, &opts).text);
        }
        return;
    }
    let Some(w) = by_name(bench) else { unknown_benchmark(bench) };
    print!("{}", gapcmd::run_gap(&w, &opts).text);
}

/// Runs one traced simulation (`run -- trace <workload>`): prints the
/// attribution tables and writes the JSONL + Chrome trace artifacts under
/// `<out>/trace/`.
fn run_trace(bench: &str, flags: &Flags) {
    let Some(w) = by_name(bench) else { unknown_benchmark(bench) };
    let ctx = ProgramContext::new(w.build());
    let sel = flags.strategy.selector(flags.targets).select(&ctx);
    let insts = flags.insts.unwrap_or(DEFAULT_TRACE_INSTS);
    let art = trace_selection(&sel, sim_config(flags), insts, flags.seed);
    let dir = flags.out.join("trace");
    let stem = format!("{}-{}", w.name, flags.strategy.label());
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    write_or_die(&jsonl_path, &art.jsonl);
    write_or_die(&chrome_path, &art.chrome);
    println!(
        "── trace {} [{}] {} PUs {} ──",
        w.name,
        flags.strategy.label(),
        flags.pus,
        if flags.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{}", art.stats);
    print!("{}", art.tables);
    println!("[event trace  -> {}]", jsonl_path.display());
    println!("[chrome trace -> {}]", chrome_path.display());
}

/// Runs the given sweeps, printing each report and noting its artifacts.
fn run_sweeps(specs: &[SweepSpec], flags: &Flags) {
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match run_sweep(*spec, flags.jobs, &flags.out) {
            Ok(report) => {
                print!("{}", report.text);
                println!(
                    "[{} cells -> {}/{}/*.json]",
                    report.cells,
                    flags.out.display(),
                    report.name
                );
            }
            Err(e) => {
                eprintln!("error: sweep {}: {e}", spec.name());
                std::process::exit(1);
            }
        }
    }
}

/// `run -- perf`: profile the canonical cells, write the
/// `BENCH_<gitshort>.json` trajectory point and the Chrome pipeline
/// view, and (with `--baseline`) gate against a previous document.
fn run_perf(flags: &Flags) {
    let opts = PerfOptions {
        reps: flags.reps,
        insts: flags.insts.unwrap_or(PerfOptions::default().insts),
    };
    let doc = perfcmd::run_perf(&opts);
    print!("{}", doc.summary);

    let bench_path = flags
        .bench_out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", perfcmd::git_short()).into());
    write_or_die(&bench_path, &(doc.json.clone() + "\n"));
    let chrome_path = flags.out.join("perf").join("pipeline.chrome.json");
    write_or_die(&chrome_path, &doc.chrome);
    println!("[perf doc     -> {}]", bench_path.display());
    println!("[chrome trace -> {}]", chrome_path.display());

    let Some(baseline_path) = &flags.baseline else { return };
    let parse = |what: &str, text: &str| match ms_prof::jsonv::parse(text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {what}: {e}");
            std::process::exit(2);
        }
    };
    let current = parse("current perf doc", &doc.json);

    // `--baseline best`: auto-select the best-ever comparable baseline
    // (same machine fingerprint and instruction budget) among the
    // committed BENCH_*.json files in the current directory — skipping
    // the document this run just wrote.
    let (baseline, label) = if baseline_path.as_os_str() == "best" {
        let current_entry = match BaselineEntry::from_doc(&current, "current") {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let written = std::fs::canonicalize(&bench_path).ok();
        let candidates = match historycmd::discover(Path::new(".")) {
            Ok(files) => files,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        let mut entries = Vec::new();
        for path in candidates {
            if std::fs::canonicalize(&path).ok() == written && written.is_some() {
                continue;
            }
            let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {file}: {e}");
                    std::process::exit(2);
                }
            };
            match BaselineEntry::from_doc(&parse(&file, &text), &file) {
                Ok(entry) => entries.push((entry, text)),
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        }
        let best = historycmd::best_baseline(
            &entries.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
            &current_entry,
        )
        .cloned();
        let Some(best) = best else {
            println!(
                "no committed baseline comparable to this machine ({} @ {} insts); \
                 best-ever gate skipped",
                current_entry.fingerprint(),
                current_entry.insts
            );
            return;
        };
        let text = &entries.iter().find(|(e, _)| e.file == best.file).expect("from entries").1;
        (parse(&best.file, text), format!("best-ever {} (git {})", best.file, best.git))
    } else {
        let baseline_text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {}: {e}", baseline_path.display());
                std::process::exit(2);
            }
        };
        (
            parse(&baseline_path.display().to_string(), &baseline_text),
            baseline_path.display().to_string(),
        )
    };
    match perfcmd::compare(&baseline, &current, flags.max_regress, flags.noise_floor_ns) {
        Ok(cmp) => {
            println!("── regression gate vs {label} ──");
            print!("{}", cmp.table);
            if cmp.regressions.is_empty() {
                println!(
                    "gate passed (threshold {:.1}%, noise floor {} ns)",
                    flags.max_regress, flags.noise_floor_ns
                );
            } else if flags.no_gate {
                eprintln!(
                    "(--no-gate: {} phase(s) regressed beyond {:.1}%, not gating)",
                    cmp.regressions.len(),
                    flags.max_regress
                );
            } else {
                eprintln!(
                    "error: {} phase(s) regressed beyond {:.1}%",
                    cmp.regressions.len(),
                    flags.max_regress
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// `run -- perf-history <dir>`: the trajectory trend engine — stdout
/// trend table, `<out>/perf/history.html` + `history.json`, exit
/// non-zero on cumulative drift vs best-ever (`--no-gate` reports
/// without failing). See `docs/PERF-HISTORY.md`.
fn run_perf_history(dir: &str, flags: &Flags) {
    let history = match historycmd::load_history(Path::new(dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", history.trend_table(flags.max_regress, flags.noise_floor_ns));
    let json_path = flags.out.join("perf").join("history.json");
    let html_path = flags.out.join("perf").join("history.html");
    write_or_die(&json_path, &(history.to_json(flags.max_regress, flags.noise_floor_ns) + "\n"));
    write_or_die(&html_path, &history.to_html(flags.max_regress, flags.noise_floor_ns));
    println!("[history json -> {}]", json_path.display());
    println!("[history html -> {}]", html_path.display());
    let drifts = history.cumulative_drift(flags.max_regress, flags.noise_floor_ns);
    if drifts.is_empty() {
        println!(
            "trajectory gate passed (threshold {:.1}%, noise floor {} ns)",
            flags.max_regress, flags.noise_floor_ns
        );
        return;
    }
    for d in &drifts {
        eprintln!(
            "drift: {} is {:+.1}% over its best-ever {} ns (git {}) at {} ns",
            d.phase, d.pct, d.best_ns, d.best_git, d.latest_ns
        );
    }
    if flags.no_gate {
        eprintln!("(--no-gate: {} drifted phase(s) reported, not gating)", drifts.len());
        return;
    }
    eprintln!(
        "error: {} phase(s) drifted beyond {:.1}% of their best-ever baseline \
         (--no-gate to report without failing; docs/PERF-HISTORY.md)",
        drifts.len(),
        flags.max_regress
    );
    std::process::exit(1);
}

/// `run -- perf-validate <file>`: schema-check one perf or history
/// document, dispatching on the `format` field (`ms-perf` →
/// [`perfcmd::validate`], `ms-perf-history` →
/// [`historycmd::validate_history`]).
fn run_perf_validate(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let doc = match ms_prof::jsonv::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    };
    let is_history = doc.get("format").and_then(|f| f.as_str()) == Some(historycmd::HISTORY_FORMAT);
    let (checked, schema_version) = if is_history {
        (historycmd::validate_history(&doc), historycmd::HISTORY_SCHEMA_VERSION)
    } else {
        (perfcmd::validate(&doc), perfcmd::PERF_SCHEMA_VERSION)
    };
    if let Err(e) = checked {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    }
    let format = if is_history { historycmd::HISTORY_FORMAT } else { "ms-perf" };
    println!("{path}: valid {format} document (schema v{schema_version})");
}

fn main() {
    let (positionals, flags) = match cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cli::help_text());
            std::process::exit(2);
        }
    };
    let cmd = positionals.first().map(String::as_str).unwrap_or("all");
    if cmd == "help" {
        print!("{}", cli::help_text());
        return;
    }
    if let Some(path) = &flags.file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let program = match ms_ir::parse_program(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        };
        run_one(path, program, &flags);
        return;
    }
    match cmd {
        "list" => print!("{}", cli::list_text()),
        "policies" => print!("{}", cli::policies_text()),
        "gap" => {
            let bench = positionals.get(1).map(String::as_str).unwrap_or("compress");
            run_gap(bench, &flags);
        }
        "fuzz" => run_fuzz(&flags),
        "perf" => run_perf(&flags),
        "perf-validate" => match positionals.get(1) {
            Some(path) => run_perf_validate(path),
            None => {
                eprintln!("error: perf-validate needs a file (see `run -- help`)");
                std::process::exit(2);
            }
        },
        "perf-history" => {
            let dir = positionals.get(1).map(String::as_str).unwrap_or(".");
            run_perf_history(dir, &flags);
        }
        "trace" => {
            let bench = positionals.get(1).map(String::as_str).unwrap_or("compress");
            run_trace(bench, &flags);
        }
        "sweeps" => run_sweeps(&SweepSpec::ALL, &flags),
        name if SWEEP_NAMES.contains(&name) => {
            let spec = SweepSpec::parse(name).expect("name is in SWEEP_NAMES");
            run_sweeps(&[spec], &flags);
        }
        "all" => {
            for w in suite() {
                run_one(w.name, w.build(), &flags);
            }
        }
        name => match by_name(name) {
            Some(w) => run_one(w.name, w.build(), &flags),
            None => unknown_benchmark(name),
        },
    }
}
