//! The experiment driver: every sweep behind the paper's figures and
//! tables, ad-hoc single runs, event traces, and pipeline profiling,
//! from one binary. `run -- help` lists every subcommand with the
//! schema version of the artifact it writes.
//!
//! Sweep mode (parallel, writes JSON metrics artifacts — see
//! `EXPERIMENTS.md` for the schema):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- sweeps --jobs 8
//! cargo run -p ms-bench --release --bin run -- figure5
//! cargo run -p ms-bench --release --bin run -- hardware --jobs 4 --out /tmp/exp
//! ```
//!
//! Single-run mode (any benchmark × heuristic × machine):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- compress --strategy ts --pus 8
//! cargo run -p ms-bench --release --bin run -- all --strategy cf --in-order
//! ```
//!
//! Trace mode (one run with the event trace on — see `docs/TRACING.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- trace compress
//! ```
//!
//! Perf mode (pipeline self-profiling and the regression gate — see
//! `docs/PROFILING.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- perf
//! cargo run -p ms-bench --release --bin run -- perf --baseline best
//! cargo run -p ms-bench --release --bin run -- perf --baseline BENCH_old.json
//! cargo run -p ms-bench --release --bin run -- perf-validate BENCH_abc1234.json
//! ```
//!
//! Perf-history mode (the whole trajectory: trend table, dashboard,
//! cumulative-drift gate — see `docs/PERF-HISTORY.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- perf-history
//! ```
//!
//! Fuzz mode (differential conformance — see `docs/CONFORMANCE.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- fuzz --seeds 500
//! ```
//!
//! Gap mode (heuristics vs the exact-partition oracle — see
//! `docs/POLICIES.md`, which also documents `run -- policies`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- gap li
//! cargo run -p ms-bench --release --bin run -- gap all --oracle-max-blocks 12
//! ```
//!
//! Service mode (the daemon and its clients — see `docs/SERVICE.md`):
//! a long-running local-socket sweep service with a FIFO job queue and
//! a content-addressed cell cache, so repeated and overlapping grids
//! from any number of clients cost near-zero; artifacts are
//! byte-identical to the one-shot path:
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- serve &
//! cargo run -p ms-bench --release --bin run -- submit figure5 table1
//! cargo run -p ms-bench --release --bin run -- jobs
//! cargo run -p ms-bench --release --bin run -- shutdown
//! ```
//!
//! Observability (see `docs/OBSERVABILITY.md`): every sweep / perf /
//! perf-history / trace / fuzz / gap invocation appends a structured
//! JSONL run record under `target/experiments/runs/`, and the sweep
//! scheduler renders a live stderr progress line on a terminal
//! (`--quiet` or `MS_NO_PROGRESS` turn it off; artifacts are identical
//! either way):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- runs --last 10
//! cargo run -p ms-bench --release --bin run -- runs show <id>
//! cargo run -p ms-bench --release --bin run -- runs-validate
//! ```
//!
//! All flags live in `ms_bench::cli` and are shared across subcommands
//! (`--out DIR`, `--jobs N`, `--strategy`, `--reps`, …).

use std::path::Path;

use ms_analysis::ProgramContext;
use ms_bench::api::SweepRequest;
use ms_bench::cache::CellCache;
use ms_bench::cli::{self, Flags};
use ms_bench::error::closest;
use ms_bench::fuzzcmd;
use ms_bench::gapcmd::{self, GapOptions};
use ms_bench::historycmd::{self, BaselineEntry};
use ms_bench::perfcmd::{self, PerfOptions};
use ms_bench::progress::{ProgressLine, SweepObserver};
use ms_bench::runscmd;
use ms_bench::servecmd::{self, ServeOptions};
use ms_bench::sweeps::{run_sweep, SweepSpec, SWEEP_NAMES};
use ms_bench::tracecmd::trace_selection;
use ms_bench::{run_selection, BenchError, DEFAULT_TRACE_INSTS};
use ms_conform::{CheckEngine, FuzzParams};
use ms_ir::Program;
use ms_prof::jsonv::Value;
use ms_prof::ledger::{ProgressSink, ProgressSnapshot, RunLedger, RunMeta};
use ms_sim::SimConfig;
use ms_workloads::{by_name, suite};

fn sim_config(flags: &Flags) -> SimConfig {
    let mut cfg = SimConfig::with_pus(flags.pus);
    if flags.in_order {
        cfg = cfg.in_order();
    }
    if !flags.dead_reg {
        cfg = cfg.without_dead_reg_analysis();
    }
    cfg
}

// ------------------------------------------------------------- ledger

/// The parsed parameters a run record's header carries — the
/// invocation's SimConfig/policy fingerprint, one deterministic set
/// for every subcommand (meaningless entries are simply defaults).
fn run_params(flags: &Flags) -> Vec<(String, String)> {
    let s = |v: String| v;
    vec![
        ("strategy".to_string(), flags.strategy.label().to_string()),
        ("pus".to_string(), s(flags.pus.to_string())),
        ("in_order".to_string(), s(flags.in_order.to_string())),
        ("dead_reg".to_string(), s(flags.dead_reg.to_string())),
        ("targets".to_string(), s(flags.targets.to_string())),
        ("insts".to_string(), flags.insts.map_or("default".to_string(), |i| i.to_string())),
        ("seed".to_string(), s(format!("{:#x}", flags.seed))),
        ("jobs".to_string(), s(flags.jobs.to_string())),
        ("out".to_string(), s(flags.out.display().to_string())),
    ]
}

/// Opens the run record for a ledgered subcommand. A ledger that cannot
/// open degrades to a warning — telemetry must never fail the science.
fn open_ledger(cmd: &str, flags: &Flags) -> Option<RunLedger> {
    let meta = RunMeta {
        cmd: cmd.to_string(),
        argv: std::env::args().skip(1).collect(),
        git: perfcmd::git_short(),
        params: run_params(flags),
    };
    match RunLedger::open(&runscmd::runs_dir(), &meta) {
        Ok(l) => Some(l),
        Err(e) => {
            eprintln!("warning: run ledger disabled: {e}");
            None
        }
    }
}

fn led_event(led: &mut Option<RunLedger>, kind: &str, fields: Vec<(&str, Value)>) {
    if let Some(l) = led.as_mut() {
        l.event(kind, fields);
    }
}

fn led_artifact(led: &mut Option<RunLedger>, path: &Path) {
    if let Some(l) = led.as_mut() {
        l.artifact(&path.display().to_string());
    }
}

// ----------------------------------------------------------- commands

fn run_one(name: &str, program: Program, flags: &Flags) {
    let sel = flags.strategy.selector(flags.targets).select(&ProgramContext::new(program));
    if flags.dump_ir {
        print!("{}", ms_ir::write_program(&sel.program));
        return;
    }
    let insts = flags.insts.unwrap_or(DEFAULT_TRACE_INSTS);
    let stats = run_selection(&sel, sim_config(flags), insts, flags.seed);
    if flags.json {
        println!(
            "{{\"bench\":\"{name}\",\"strategy\":\"{}\",\"stats\":{}}}",
            flags.strategy.label(),
            stats.to_json()
        );
        return;
    }
    println!(
        "── {name} [{}] {} PUs {} ──",
        flags.strategy.label(),
        flags.pus,
        if flags.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{stats}");
}

fn unknown_benchmark(name: &str) -> i32 {
    // The name could be a misspelled sweep, subcommand or benchmark —
    // suggest the nearest match from whichever namespace is closest.
    if let Some(s) = closest(name, &SWEEP_NAMES) {
        let e = BenchError::UnknownSweep { name: name.to_string(), suggestion: Some(s) };
        eprintln!("error: {e}");
    } else if let Some(s) = closest(name, &cli::subcommand_names()) {
        eprintln!("error: unknown subcommand `{name}` (did you mean `{s}`?)");
    } else {
        let benches: Vec<&'static str> = suite().iter().map(|w| w.name).collect();
        let e = BenchError::UnknownBenchmark {
            name: name.to_string(),
            suggestion: closest(name, &benches),
        };
        eprintln!("error: {e}");
    }
    eprintln!("(`run -- list` enumerates benchmarks and sweeps; see `run -- help`)");
    2
}

/// `run -- fuzz`: the differential conformance fuzz loop (see
/// `docs/CONFORMANCE.md`), minimal repros written under `<out>/fuzz/`.
fn run_fuzz(flags: &Flags, led: &mut Option<RunLedger>) -> i32 {
    let engine = match flags.engine {
        cli::EngineChoice::Batch => CheckEngine::Batch,
        cli::EngineChoice::Scalar => CheckEngine::Scalar,
        cli::EngineChoice::Both => CheckEngine::Both,
    };
    let params = FuzzParams {
        max_blocks: flags.max_blocks,
        insts: flags.insts.unwrap_or(FuzzParams::default().insts),
        inject: flags.inject,
        engine,
    };
    let report = fuzzcmd::run_fuzz(flags.seeds, flags.seed, &params, flags.jobs, &flags.out);
    for (path, body) in &report.artifacts {
        write_or_die(path, body);
        led_artifact(led, path);
    }
    for f in &report.failures {
        led_event(
            led,
            "failure",
            vec![
                ("seed", Value::Str(format!("{:#x}", f.seed))),
                ("strategy", Value::Str(f.strategy.to_string())),
                ("violations", Value::Num(f.errors.len() as f64)),
            ],
        );
    }
    led_event(
        led,
        "fuzz",
        vec![
            ("seeds", Value::Num(report.seeds as f64)),
            ("failures", Value::Num(report.failures.len() as f64)),
        ],
    );
    print!("{}", report.text);
    if report.failures.is_empty() {
        0
    } else {
        1
    }
}

fn write_or_die(path: &Path, body: &str) {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("error: cannot create {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }
    if let Err(e) = std::fs::write(path, body) {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}

/// `run -- gap <benchmark> | all`: the heuristic-vs-optimal table (see
/// `docs/POLICIES.md`).
fn run_gap(bench: &str, flags: &Flags, led: &mut Option<RunLedger>) -> i32 {
    let opts = GapOptions {
        targets: flags.targets,
        oracle_max_blocks: flags.oracle_max_blocks,
        insts: flags.insts.unwrap_or(DEFAULT_TRACE_INSTS),
        seed: flags.seed,
        config: sim_config(flags),
    };
    let one = |w: &ms_workloads::Workload, led: &mut Option<RunLedger>| {
        let report = gapcmd::run_gap(w, &opts);
        led_event(
            led,
            "gap",
            vec![
                ("bench", Value::Str(w.name.to_string())),
                ("rows", Value::Num(report.rows.len() as f64)),
                ("eligible_funcs", Value::Num(report.eligible_funcs as f64)),
            ],
        );
        print!("{}", report.text);
    };
    if bench == "all" {
        for (i, w) in suite().iter().enumerate() {
            if i > 0 {
                println!();
            }
            one(w, led);
        }
        return 0;
    }
    let Some(w) = by_name(bench) else { return unknown_benchmark(bench) };
    one(&w, led);
    0
}

/// Runs one traced simulation (`run -- trace <workload>`): prints the
/// attribution tables and writes the JSONL + Chrome trace artifacts under
/// `<out>/trace/`.
fn run_trace(bench: &str, flags: &Flags, led: &mut Option<RunLedger>) -> i32 {
    let Some(w) = by_name(bench) else { return unknown_benchmark(bench) };
    let ctx = ProgramContext::new(w.build());
    let sel = flags.strategy.selector(flags.targets).select(&ctx);
    let insts = flags.insts.unwrap_or(DEFAULT_TRACE_INSTS);
    let art = trace_selection(&sel, sim_config(flags), insts, flags.seed);
    let dir = flags.out.join("trace");
    let stem = format!("{}-{}", w.name, flags.strategy.label());
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    write_or_die(&jsonl_path, &art.jsonl);
    write_or_die(&chrome_path, &art.chrome);
    led_event(led, "cell", vec![("cell", Value::Str(stem.clone()))]);
    led_artifact(led, &jsonl_path);
    led_artifact(led, &chrome_path);
    println!(
        "── trace {} [{}] {} PUs {} ──",
        w.name,
        flags.strategy.label(),
        flags.pus,
        if flags.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{}", art.stats);
    print!("{}", art.tables);
    println!("[event trace  -> {}]", jsonl_path.display());
    println!("[chrome trace -> {}]", chrome_path.display());
    0
}

/// Runs the given sweeps, printing each report and noting its
/// artifacts. The scheduler streams telemetry into a [`ProgressSink`]
/// (returned as the run record's footer snapshot) and, on a terminal,
/// a live progress line.
fn run_sweeps(
    specs: &[SweepSpec],
    flags: &Flags,
    led: &mut Option<RunLedger>,
) -> (i32, ProgressSnapshot) {
    let sink = ProgressSink::new(flags.jobs.max(1));
    let Some(engine) = flags.engine.sweep_engine() else {
        eprintln!("error: --engine both is only meaningful to `run -- fuzz`");
        return (2, sink.snapshot());
    };
    let label = if specs.len() == 1 { specs[0].name() } else { "sweeps" };
    let line = ProgressLine::stderr(label, flags.quiet);
    let tick = || line.tick(&sink);
    // `--cache-dir` opts the one-shot path into the same
    // content-addressed cell cache the service daemon uses; without it
    // every cell simulates (the historical behaviour).
    let cache = match &flags.cache_dir {
        Some(dir) => match CellCache::at(dir) {
            Ok(c) => Some(c),
            Err(e) => {
                eprintln!("warning: cell cache at {} disabled: {e}", dir.display());
                None
            }
        },
        None => None,
    };
    let obs =
        SweepObserver { sink: &sink, on_tick: &tick, cache: cache.as_ref(), on_cell: &|_| {} };
    for (i, spec) in specs.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match run_sweep(*spec, flags.jobs, &flags.out, &obs, engine) {
            Ok(report) => {
                line.finish();
                print!("{}", report.text);
                println!(
                    "[{} cells -> {}/{}/*.json]",
                    report.cells,
                    flags.out.display(),
                    report.name
                );
                let dir = flags.out.join(report.name);
                for id in &report.cell_ids {
                    led_event(
                        led,
                        "cell",
                        vec![
                            ("sweep", Value::Str(report.name.to_string())),
                            ("cell", Value::Str(id.clone())),
                        ],
                    );
                    led_artifact(led, &dir.join(format!("{id}.json")));
                }
                led_artifact(led, &dir.join("report.md"));
            }
            Err(e) => {
                line.finish();
                eprintln!("error: sweep {}: {e}", spec.name());
                return (1, sink.snapshot());
            }
        }
    }
    line.finish();
    (0, sink.snapshot())
}

/// `run -- perf`: profile the canonical cells, write the
/// `BENCH_<gitshort>.json` trajectory point and the Chrome pipeline
/// view, and (with `--baseline`) gate against a previous document.
fn run_perf(flags: &Flags, led: &mut Option<RunLedger>) -> i32 {
    match perf_inner(flags, led) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
    }
}

fn perf_inner(flags: &Flags, led: &mut Option<RunLedger>) -> Result<i32, String> {
    let Some(engine) = flags.engine.sweep_engine() else {
        return Err("--engine both is only meaningful to `run -- fuzz`".to_string());
    };
    let opts = PerfOptions {
        reps: flags.reps,
        insts: flags.insts.unwrap_or(PerfOptions::default().insts),
        engine,
    };
    let doc = perfcmd::run_perf(&opts);
    print!("{}", doc.summary);

    let bench_path = flags
        .bench_out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", perfcmd::git_short()).into());
    write_or_die(&bench_path, &(doc.json.clone() + "\n"));
    let chrome_path = flags.out.join("perf").join("pipeline.chrome.json");
    write_or_die(&chrome_path, &doc.chrome);
    println!("[perf doc     -> {}]", bench_path.display());
    println!("[chrome trace -> {}]", chrome_path.display());
    led_artifact(led, &bench_path);
    led_artifact(led, &chrome_path);

    let current = ms_prof::jsonv::parse(&doc.json).map_err(|e| format!("current perf doc: {e}"))?;
    if let Some(cells) = current.get("cells").and_then(Value::as_arr) {
        for cell in cells {
            if let (Some(id), Some(med)) = (
                cell.get("id").and_then(Value::as_str),
                cell.get("median_ns").and_then(Value::as_u64),
            ) {
                led_event(
                    led,
                    "cell",
                    vec![
                        ("cell", Value::Str(id.to_string())),
                        ("median_ns", Value::Num(med as f64)),
                    ],
                );
            }
        }
    }

    let Some(baseline_path) = &flags.baseline else { return Ok(0) };

    // `--baseline best`: auto-select the best-ever comparable baseline
    // (same machine fingerprint and instruction budget) among the
    // committed BENCH_*.json files in the current directory — skipping
    // the document this run just wrote.
    let (baseline, label) = if baseline_path.as_os_str() == "best" {
        let current_entry =
            BaselineEntry::from_doc(&current, "current").map_err(|e| e.to_string())?;
        let written = std::fs::canonicalize(&bench_path).ok();
        let candidates = historycmd::discover(Path::new(".")).map_err(|e| e.to_string())?;
        let mut entries = Vec::new();
        for path in candidates {
            if std::fs::canonicalize(&path).ok() == written && written.is_some() {
                continue;
            }
            let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read {file}: {e}"))?;
            let doc = ms_prof::jsonv::parse(&text).map_err(|e| format!("{file}: {e}"))?;
            let entry = BaselineEntry::from_doc(&doc, &file).map_err(|e| e.to_string())?;
            entries.push((entry, text));
        }
        let best = historycmd::best_baseline(
            &entries.iter().map(|(e, _)| e.clone()).collect::<Vec<_>>(),
            &current_entry,
        )
        .cloned();
        let Some(best) = best else {
            println!(
                "no committed baseline comparable to this machine ({} @ {} insts); \
                 best-ever gate skipped",
                current_entry.fingerprint(),
                current_entry.insts
            );
            return Ok(0);
        };
        let text = &entries.iter().find(|(e, _)| e.file == best.file).expect("from entries").1;
        let doc = ms_prof::jsonv::parse(text).map_err(|e| format!("{}: {e}", best.file))?;
        (doc, format!("best-ever {} (git {})", best.file, best.git))
    } else {
        let baseline_text = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {}: {e}", baseline_path.display()))?;
        let doc = ms_prof::jsonv::parse(&baseline_text)
            .map_err(|e| format!("{}: {e}", baseline_path.display()))?;
        (doc, baseline_path.display().to_string())
    };
    let cmp = perfcmd::compare(&baseline, &current, flags.max_regress, flags.noise_floor_ns)
        .map_err(|e| e.to_string())?;
    println!("── regression gate vs {label} ──");
    print!("{}", cmp.table);
    led_event(
        led,
        "gate",
        vec![
            ("baseline", Value::Str(label.clone())),
            ("regressions", Value::Num(cmp.regressions.len() as f64)),
        ],
    );
    if cmp.regressions.is_empty() {
        println!(
            "gate passed (threshold {:.1}%, noise floor {} ns)",
            flags.max_regress, flags.noise_floor_ns
        );
        Ok(0)
    } else if flags.no_gate {
        eprintln!(
            "(--no-gate: {} phase(s) regressed beyond {:.1}%, not gating)",
            cmp.regressions.len(),
            flags.max_regress
        );
        Ok(0)
    } else {
        eprintln!(
            "error: {} phase(s) regressed beyond {:.1}%",
            cmp.regressions.len(),
            flags.max_regress
        );
        Ok(1)
    }
}

/// `run -- perf-history <dir>`: the trajectory trend engine — stdout
/// trend table, `<out>/perf/history.html` + `history.json`, exit
/// non-zero on cumulative drift vs best-ever in any phase **or any
/// individual cell** (`--no-gate` reports without failing). See
/// `docs/PERF-HISTORY.md`.
fn run_perf_history(dir: &str, flags: &Flags, led: &mut Option<RunLedger>) -> i32 {
    let history = match historycmd::load_history(Path::new(dir)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    print!("{}", history.trend_table(flags.max_regress, flags.noise_floor_ns));
    let json_path = flags.out.join("perf").join("history.json");
    let html_path = flags.out.join("perf").join("history.html");
    write_or_die(&json_path, &(history.to_json(flags.max_regress, flags.noise_floor_ns) + "\n"));
    write_or_die(&html_path, &history.to_html(flags.max_regress, flags.noise_floor_ns));
    println!("[history json -> {}]", json_path.display());
    println!("[history html -> {}]", html_path.display());
    led_artifact(led, &json_path);
    led_artifact(led, &html_path);
    for e in &history.entries {
        led_event(
            led,
            "baseline",
            vec![
                ("git", Value::Str(e.git.clone())),
                ("file", Value::Str(e.file.clone())),
                ("cells_per_s", Value::Num(e.cells_per_s)),
            ],
        );
    }
    let drifts = history.cumulative_drift(flags.max_regress, flags.noise_floor_ns);
    let cell_drifts = history.cell_drift(flags.max_regress, flags.noise_floor_ns);
    if drifts.is_empty() && cell_drifts.is_empty() {
        println!(
            "trajectory gate passed (threshold {:.1}%, noise floor {} ns)",
            flags.max_regress, flags.noise_floor_ns
        );
        return 0;
    }
    for d in &drifts {
        eprintln!(
            "drift: {} is {:+.1}% over its best-ever {} ns (git {}) at {} ns",
            d.phase, d.pct, d.best_ns, d.best_git, d.latest_ns
        );
        led_event(
            led,
            "drift",
            vec![("phase", Value::Str(d.phase.clone())), ("pct", Value::Num(d.pct))],
        );
    }
    for d in &cell_drifts {
        eprintln!(
            "drift: cell {} is {:+.1}% over its best-ever {} ns (git {}) at {} ns \
             (aggregate passes; per-cell gate)",
            d.phase, d.pct, d.best_ns, d.best_git, d.latest_ns
        );
        led_event(
            led,
            "drift",
            vec![("cell", Value::Str(d.phase.clone())), ("pct", Value::Num(d.pct))],
        );
    }
    if flags.no_gate {
        eprintln!(
            "(--no-gate: {} drifted phase(s)/cell(s) reported, not gating)",
            drifts.len() + cell_drifts.len()
        );
        return 0;
    }
    eprintln!(
        "error: {} phase(s)/cell(s) drifted beyond {:.1}% of their best-ever baseline \
         (--no-gate to report without failing; docs/PERF-HISTORY.md)",
        drifts.len() + cell_drifts.len(),
        flags.max_regress
    );
    1
}

/// `run -- perf-validate <file>`: schema-check one perf or history
/// document, dispatching on the `format` field (`ms-perf` →
/// [`perfcmd::validate`], `ms-perf-history` →
/// [`historycmd::validate_history`]).
fn run_perf_validate(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 2;
        }
    };
    let doc = match ms_prof::jsonv::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return 1;
        }
    };
    let is_history = doc.get("format").and_then(|f| f.as_str()) == Some(historycmd::HISTORY_FORMAT);
    let (checked, schema_version) = if is_history {
        (historycmd::validate_history(&doc), historycmd::HISTORY_SCHEMA_VERSION)
    } else {
        (perfcmd::validate(&doc), perfcmd::PERF_SCHEMA_VERSION)
    };
    if let Err(e) = checked {
        eprintln!("error: {path}: {e}");
        return 1;
    }
    let format = if is_history { historycmd::HISTORY_FORMAT } else { "ms-perf" };
    println!("{path}: valid {format} document (schema v{schema_version})");
    0
}

// ------------------------------------------------------------ service

/// The socket the daemon listens on / the clients dial: `--socket`, or
/// `<out>/serve.sock`.
fn socket_path(flags: &Flags) -> std::path::PathBuf {
    flags.socket.clone().unwrap_or_else(|| flags.out.join("serve.sock"))
}

/// `run -- serve`: the foreground sweep service daemon (see
/// `docs/SERVICE.md`). Exits when a client sends `shutdown` and the
/// queue has drained.
fn run_serve(flags: &Flags) -> i32 {
    let opts = ServeOptions {
        socket: socket_path(flags),
        jobs: flags.jobs,
        out: flags.out.clone(),
        cache_dir: flags.cache_dir.clone().unwrap_or_else(|| flags.out.join("cellcache")),
        runs_dir: runscmd::runs_dir(),
        quiet: flags.quiet,
    };
    let socket = opts.socket.clone();
    let cache_dir = opts.cache_dir.clone();
    match servecmd::Server::start(opts) {
        Ok(server) => {
            if !flags.quiet {
                println!(
                    "serve: listening on {} (cell cache {}; `run -- shutdown` to stop)",
                    socket.display(),
                    cache_dir.display()
                );
            }
            match server.join() {
                Ok(jobs) => {
                    if !flags.quiet {
                        println!("serve: exiting after {jobs} job(s)");
                    }
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    1
                }
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

/// `run -- submit <sweep>... | all`: send a [`SweepRequest`] to the
/// daemon and stream the job's events until it completes.
fn run_submit(positionals: &[String], flags: &Flags) -> i32 {
    let mut sweeps: Vec<String> = positionals[1..].to_vec();
    if sweeps.iter().any(|s| s == "all") {
        sweeps = SWEEP_NAMES.iter().map(|s| s.to_string()).collect();
    }
    if sweeps.is_empty() {
        eprintln!("error: submit needs at least one sweep name or `all` (see `run -- list`)");
        return 2;
    }
    let req = SweepRequest { sweeps, jobs: Some(flags.jobs) };
    // Resolve locally first: a typo earns its suggestion without a
    // round-trip (the daemon re-validates anyway).
    if let Err(e) = req.resolve() {
        eprintln!("error: {e}");
        return 2;
    }
    match servecmd::submit(&socket_path(flags), &req, flags.quiet) {
        Ok(_status) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

/// `run -- runs [show <id>]`: query the run ledger.
fn run_runs(positionals: &[String], flags: &Flags) -> i32 {
    let dir = runscmd::runs_dir();
    match positionals.get(1).map(String::as_str) {
        None => {
            print!("{}", runscmd::list_runs(&dir, flags.last, flags.cmd_filter.as_deref()));
            0
        }
        Some("show") => match positionals.get(2) {
            Some(id) => match runscmd::show_run(&dir, id) {
                Ok(text) => {
                    print!("{text}");
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            },
            None => {
                eprintln!("error: `runs show` needs a record id (see `run -- runs`)");
                2
            }
        },
        Some(other) => {
            eprintln!("error: unknown runs subcommand `{other}` (try `runs` or `runs show <id>`)");
            2
        }
    }
}

fn main() {
    std::process::exit(real_main());
}

fn real_main() -> i32 {
    let (positionals, flags) = match cli::parse(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{}", cli::help_text());
            return 2;
        }
    };
    let cmd = positionals.first().map(String::as_str).unwrap_or("all");
    if cmd == "help" {
        print!("{}", cli::help_text());
        return 0;
    }
    if let Some(path) = &flags.file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return 2;
            }
        };
        let program = match ms_ir::parse_program(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return 2;
            }
        };
        run_one(path, program, &flags);
        return 0;
    }

    // Every artifact-producing subcommand leaves a run record; queries
    // (`list`, `runs`, validators) and ad-hoc single runs do not.
    let ledgered = matches!(cmd, "sweeps" | "perf" | "perf-history" | "trace" | "fuzz" | "gap")
        || SWEEP_NAMES.contains(&cmd);
    let mut led = if ledgered { open_ledger(cmd, &flags) } else { None };

    let mut progress = ProgressSnapshot::default();
    let code = match cmd {
        "list" => {
            print!("{}", cli::list_text());
            0
        }
        "policies" => {
            print!("{}", cli::policies_text());
            0
        }
        "serve" => run_serve(&flags),
        "submit" => run_submit(&positionals, &flags),
        "jobs" => {
            match servecmd::jobs_table(&socket_path(&flags), positionals.get(1).map(String::as_str))
            {
                Ok(table) => {
                    print!("{table}");
                    0
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    2
                }
            }
        }
        "shutdown" => match servecmd::shutdown(&socket_path(&flags)) {
            Ok(()) => {
                println!("daemon at {} is shutting down", socket_path(&flags).display());
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                2
            }
        },
        "runs" => run_runs(&positionals, &flags),
        "runs-validate" => {
            let (text, code) = runscmd::validate_runs(
                &runscmd::runs_dir(),
                positionals.get(1).map(String::as_str),
            );
            print!("{text}");
            code
        }
        "gap" => {
            let bench = positionals.get(1).map(String::as_str).unwrap_or("compress");
            run_gap(bench, &flags, &mut led)
        }
        "fuzz" => run_fuzz(&flags, &mut led),
        "perf" => run_perf(&flags, &mut led),
        "perf-validate" => match positionals.get(1) {
            Some(path) => run_perf_validate(path),
            None => {
                eprintln!("error: perf-validate needs a file (see `run -- help`)");
                2
            }
        },
        "perf-history" => {
            let dir = positionals.get(1).map(String::as_str).unwrap_or(".");
            run_perf_history(dir, &flags, &mut led)
        }
        "trace" => {
            let bench = positionals.get(1).map(String::as_str).unwrap_or("compress");
            run_trace(bench, &flags, &mut led)
        }
        "sweeps" => {
            let (code, snap) = run_sweeps(&SweepSpec::ALL, &flags, &mut led);
            progress = snap;
            code
        }
        name if SWEEP_NAMES.contains(&name) => {
            // The one-shot path speaks the same typed request vocabulary
            // as the daemon's `submit` verb (see `ms_bench::api`).
            let req = SweepRequest { sweeps: vec![name.to_string()], jobs: Some(flags.jobs) };
            let specs = req.resolve().expect("name is in SWEEP_NAMES");
            let (code, snap) = run_sweeps(&specs, &flags, &mut led);
            progress = snap;
            code
        }
        "all" => {
            for w in suite() {
                run_one(w.name, w.build(), &flags);
            }
            0
        }
        name => match by_name(name) {
            Some(w) => {
                run_one(w.name, w.build(), &flags);
                0
            }
            None => unknown_benchmark(name),
        },
    };

    if let Some(ledger) = led.take() {
        let outcome = if code == 0 { "ok" } else { "failed" };
        match ledger.close(outcome, code, &progress) {
            Ok(path) => println!("[run record   -> {}]", path.display()),
            Err(e) => eprintln!("warning: run record not closed: {e}"),
        }
    }
    code
}
