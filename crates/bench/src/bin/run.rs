//! The experiment driver: every sweep behind the paper's figures and
//! tables, plus ad-hoc single runs, from one binary.
//!
//! Sweep mode (parallel, writes JSON metrics artifacts — see
//! `EXPERIMENTS.md` for the schema):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- sweeps --jobs 8
//! cargo run -p ms-bench --release --bin run -- figure5
//! cargo run -p ms-bench --release --bin run -- hardware --jobs 4 --out /tmp/exp
//! ```
//!
//! Sweep names: `figure5`, `table1`, `targets`, `thresholds`, `pus`,
//! `forwarding`, `predication`, `hardware`, or `sweeps` for all eight.
//! `--jobs N` sets the worker-thread count (default: available cores;
//! results are bit-identical for every N), `--out DIR` the artifact root
//! (default `target/experiments`).
//!
//! Single-run mode (any benchmark × heuristic × machine):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- compress --strategy ts --pus 8
//! cargo run -p ms-bench --release --bin run -- all --strategy cf --in-order
//! ```
//!
//! Flags: `--strategy bb|cf|dd|ts` (default cf), `--pus N` (default 4),
//! `--in-order`, `--insts N` (default 100000), `--seed N`,
//! `--targets N` (heuristic target limit, default 4), `--no-dead-reg`,
//! `--json` (machine-readable output), `--file path.msir` (run a program
//! in the textual IR format instead of a named workload), `--dump-ir`
//! (print the selected program in the textual IR format and exit).
//!
//! Trace mode (one run with the event trace on — see `docs/TRACING.md`):
//!
//! ```text
//! cargo run -p ms-bench --release --bin run -- trace compress
//! cargo run -p ms-bench --release --bin run -- trace go --strategy dd --pus 8
//! ```
//!
//! Prints the squash/stall attribution tables and writes
//! `<out>/trace/<bench>-<strategy>.jsonl` (the schema-versioned JSONL
//! event trace) and `<out>/trace/<bench>-<strategy>.chrome.json` (load
//! it in `chrome://tracing` or <https://ui.perfetto.dev>).

use std::path::PathBuf;

use ms_bench::sweeps::{run_sweep, SWEEP_NAMES};
use ms_bench::tracecmd::trace_selection;
use ms_bench::{run_selection, Heuristic};
use ms_ir::Program;
use ms_sim::SimConfig;
use ms_workloads::{by_name, suite};

struct Args {
    bench: String,
    strategy: Heuristic,
    pus: usize,
    in_order: bool,
    insts: usize,
    seed: u64,
    targets: usize,
    dead_reg: bool,
    json: bool,
    file: Option<String>,
    dump_ir: bool,
    jobs: usize,
    out: PathBuf,
    trace: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bench: "all".to_string(),
        strategy: Heuristic::ControlFlow,
        pus: 4,
        in_order: false,
        insts: 100_000,
        seed: ms_bench::DEFAULT_SEED,
        targets: 4,
        dead_reg: true,
        json: false,
        file: None,
        dump_ir: false,
        jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        out: PathBuf::from("target/experiments"),
        trace: false,
    };
    let mut it = std::env::args().skip(1);
    let mut positional_seen = false;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match arg.as_str() {
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "bb" => Heuristic::BasicBlock,
                    "cf" => Heuristic::ControlFlow,
                    "dd" => Heuristic::DataDependence,
                    "ts" => Heuristic::TaskSize,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--pus" => args.pus = value("--pus")?.parse().map_err(|e| format!("--pus: {e}"))?,
            "--in-order" => args.in_order = true,
            "--insts" => {
                args.insts = value("--insts")?.parse().map_err(|e| format!("--insts: {e}"))?
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--targets" => {
                args.targets = value("--targets")?.parse().map_err(|e| format!("--targets: {e}"))?
            }
            "--no-dead-reg" => args.dead_reg = false,
            "--json" => args.json = true,
            "--file" => args.file = Some(value("--file")?),
            "--dump-ir" => args.dump_ir = true,
            "--jobs" => args.jobs = value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "trace" if !args.trace && !positional_seen => {
                // `run -- trace <workload>`: the next positional is the
                // workload to trace (default compress).
                args.trace = true;
                args.bench = "compress".to_string();
            }
            other if !other.starts_with("--") && !positional_seen => {
                args.bench = other.to_string();
                positional_seen = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run_one(name: &str, program: &Program, args: &Args) {
    let sel = args.strategy.selector(args.targets).select(program);
    if args.dump_ir {
        print!("{}", ms_ir::write_program(&sel.program));
        return;
    }
    let mut cfg = SimConfig::with_pus(args.pus);
    if args.in_order {
        cfg = cfg.in_order();
    }
    if !args.dead_reg {
        cfg = cfg.without_dead_reg_analysis();
    }
    let stats = run_selection(&sel, cfg, args.insts, args.seed);
    if args.json {
        println!(
            "{{\"bench\":\"{name}\",\"strategy\":\"{}\",\"stats\":{}}}",
            args.strategy.label(),
            stats.to_json()
        );
        return;
    }
    println!(
        "── {name} [{}] {} PUs {} ──",
        args.strategy.label(),
        args.pus,
        if args.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{stats}");
}

/// Runs one traced simulation (`run -- trace <workload>`): prints the
/// attribution tables and writes the JSONL + Chrome trace artifacts under
/// `<out>/trace/`.
fn run_trace(args: &Args) {
    let w = match by_name(&args.bench) {
        Some(w) => w,
        None => {
            eprintln!("unknown benchmark `{}`; benchmarks:", args.bench);
            for w in suite() {
                eprintln!("  {}", w.name);
            }
            std::process::exit(2);
        }
    };
    let program = w.build();
    let sel = args.strategy.selector(args.targets).select(&program);
    let mut cfg = SimConfig::with_pus(args.pus);
    if args.in_order {
        cfg = cfg.in_order();
    }
    if !args.dead_reg {
        cfg = cfg.without_dead_reg_analysis();
    }
    let art = trace_selection(&sel, cfg, args.insts, args.seed);
    let dir = args.out.join("trace");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let stem = format!("{}-{}", w.name, args.strategy.label());
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let chrome_path = dir.join(format!("{stem}.chrome.json"));
    for (path, body) in [(&jsonl_path, &art.jsonl), (&chrome_path, &art.chrome)] {
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    println!(
        "── trace {} [{}] {} PUs {} ──",
        w.name,
        args.strategy.label(),
        args.pus,
        if args.in_order { "in-order" } else { "out-of-order" }
    );
    println!("{}", art.stats);
    print!("{}", art.tables);
    println!("[event trace  -> {}]", jsonl_path.display());
    println!("[chrome trace -> {}]", chrome_path.display());
}

/// Runs the named sweeps, printing each report and noting its artifacts.
fn run_sweeps(names: &[&str], args: &Args) {
    for (i, name) in names.iter().enumerate() {
        if i > 0 {
            println!();
        }
        match run_sweep(name, args.jobs, &args.out) {
            Ok(Some(report)) => {
                print!("{}", report.text);
                println!(
                    "[{} cells -> {}/{}/*.json]",
                    report.cells,
                    args.out.display(),
                    report.name
                );
            }
            Ok(None) => unreachable!("sweep names are validated before dispatch"),
            Err(e) => {
                eprintln!("error: sweep {name}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: run [sweeps|<sweep>|trace <benchmark>|benchmark|all] [--jobs N] [--out DIR]");
            eprintln!("           [--strategy bb|cf|dd|ts] [--pus N] [--in-order] [--insts N]");
            eprintln!("           [--seed N] [--targets N] [--no-dead-reg] [--json]");
            eprintln!("sweeps: {}", SWEEP_NAMES.join(", "));
            std::process::exit(2);
        }
    };
    if let Some(path) = &args.file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let program = match ms_ir::parse_program(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(2);
            }
        };
        run_one(path, &program, &args);
    } else if args.trace {
        run_trace(&args);
    } else if args.bench == "sweeps" {
        run_sweeps(&SWEEP_NAMES, &args);
    } else if SWEEP_NAMES.contains(&args.bench.as_str()) {
        run_sweeps(&[args.bench.as_str()], &args);
    } else if args.bench == "all" {
        for w in suite() {
            run_one(w.name, &w.build(), &args);
        }
    } else if let Some(w) = by_name(&args.bench) {
        run_one(w.name, &w.build(), &args);
    } else {
        eprintln!("unknown benchmark or sweep `{}`; benchmarks:", args.bench);
        for w in suite() {
            eprintln!("  {}", w.name);
        }
        eprintln!("sweeps: {}", SWEEP_NAMES.join(", "));
        std::process::exit(2);
    }
}
