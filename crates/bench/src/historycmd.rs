//! `run -- perf-history`: the perf-trajectory trend engine.
//!
//! [`crate::perfcmd`] writes one `BENCH_<gitshort>.json` per
//! PR; this module is their consumer. It discovers every committed
//! `BENCH_*.json` in a directory, validates each against the perf
//! schema (an invalid file is a hard error, never silently skipped),
//! orders them along the recorded git history (commit timestamp, with
//! the git short hash as the tie-break), and renders the whole
//! trajectory three ways:
//!
//! * a **trend table** on stdout — one row per baseline with
//!   cells/s deltas, then the latest measurement's phases against
//!   their best-ever medians, sparklines included;
//! * a dependency-free **HTML dashboard** (`history.html`, inline SVG:
//!   cells/s trajectory, per-phase sparklines, machine-fingerprint
//!   legend);
//! * a schema-versioned **`history.json`** for downstream tooling
//!   ([`HISTORY_SCHEMA_VERSION`], validated by [`validate_history`]).
//!
//! The trajectory also *gates*: the pairwise `run -- perf --baseline`
//! comparator only sees one step, so a phase can bleed a few percent
//! per PR forever without tripping it. [`History::cumulative_drift`]
//! closes that hole — any phase of the latest baseline that sits more
//! than the threshold above its **best-ever** median (among baselines
//! with the same machine fingerprint and instruction budget) is
//! drift, and `run -- perf-history` exits non-zero on it.
//! [`History::cell_drift`] applies the same best-ever rule to every
//! *individual cell* — a single cell can regress badly while the
//! aggregate improves (the other cells got faster), and the phase
//! gate alone would wave it through. Baselines from different
//! machines or budgets are never compared — the fingerprint travels
//! with every document precisely so numbers are only compared
//! like-for-like. Each baseline also carries a one-line *trajectory
//! annotation* (the `CHANGES.md` summary of the PR that committed it,
//! recovered from git) shown as hover text on the dashboard's
//! cells/s points. See `docs/PERF-HISTORY.md`.

use std::path::{Path, PathBuf};

use ms_prof::jsonv::Value;

use crate::json::JsonObj;
use crate::perfcmd::{self, fmt_ns};

/// Version of the `history.json` document schema (bump on any field
/// change; documented field-by-field in `docs/PERF-HISTORY.md`).
/// v2 added the `cell_drift` array (per-cell best-ever gate).
pub const HISTORY_SCHEMA_VERSION: u32 = 2;

/// The `format` tag distinguishing a history document from a
/// `BENCH_*.json` perf document (`ms-perf`) — `run -- perf-validate`
/// dispatches on it.
pub const HISTORY_FORMAT: &str = "ms-perf-history";

/// One parsed `BENCH_*.json` baseline, reduced to what the trend
/// engine needs.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineEntry {
    /// Source file name (`BENCH_a8e6457.json`).
    pub file: String,
    /// The `git` short hash recorded in the document.
    pub git: String,
    /// Commit timestamp (unix seconds) of [`BaselineEntry::git`], if
    /// the hash resolves in the repository the file was found in.
    pub timestamp: Option<u64>,
    /// Machine fingerprint: `machine.os`.
    pub os: String,
    /// Machine fingerprint: `machine.arch`.
    pub arch: String,
    /// Machine fingerprint: `machine.cpus`.
    pub cpus: u64,
    /// Timed repetitions behind the medians.
    pub reps: u64,
    /// Dynamic instruction budget per cell.
    pub insts: u64,
    /// Median end-to-end wall time, nanoseconds.
    pub total_ns: u64,
    /// Median wall time charged to top-level spans.
    pub top_level_ns: u64,
    /// Cells per second at the median end-to-end time.
    pub cells_per_s: f64,
    /// Per-phase medians, in document order.
    pub phases: Vec<(String, u64)>,
    /// Per-cell medians, in document order.
    pub cells: Vec<(String, u64)>,
}

impl BaselineEntry {
    /// Parses a validated perf document ([`perfcmd::validate`] runs
    /// first, so `top_level_ns > total_ns` and every other schema
    /// violation is rejected here, not silently skipped downstream).
    pub fn from_doc(doc: &Value, file: &str) -> Result<Self, String> {
        perfcmd::validate(doc).map_err(|e| format!("{file}: {e}"))?;
        let u = |key: &str| doc.get(key).and_then(Value::as_u64).expect("validated");
        let machine = doc.get("machine").expect("validated");
        let rows = |key: &str, name: &str, num: &str| -> Vec<(String, u64)> {
            doc.get(key)
                .and_then(Value::as_arr)
                .expect("validated")
                .iter()
                .map(|row| {
                    (
                        row.get(name).and_then(Value::as_str).expect("validated").to_string(),
                        row.get(num).and_then(Value::as_u64).expect("validated"),
                    )
                })
                .collect()
        };
        Ok(BaselineEntry {
            file: file.to_string(),
            git: doc.get("git").and_then(Value::as_str).expect("validated").to_string(),
            timestamp: None,
            os: machine.get("os").and_then(Value::as_str).expect("validated").to_string(),
            arch: machine.get("arch").and_then(Value::as_str).expect("validated").to_string(),
            cpus: machine.get("cpus").and_then(Value::as_u64).expect("validated"),
            reps: u("reps"),
            insts: u("insts"),
            total_ns: u("total_ns"),
            top_level_ns: u("top_level_ns"),
            cells_per_s: doc.get("cells_per_s").and_then(Value::as_f64).expect("validated"),
            phases: rows("phases", "phase", "median_ns"),
            cells: rows("cells", "id", "median_ns"),
        })
    }

    /// The machine fingerprint as one display token (`linux/x86_64/1`).
    pub fn fingerprint(&self) -> String {
        format!("{}/{}/{}", self.os, self.arch, self.cpus)
    }

    /// Whether two baselines may be compared at all: same machine
    /// fingerprint and same instruction budget. Everything the trend
    /// engine gates or ranks is filtered through this.
    pub fn comparable(&self, other: &BaselineEntry) -> bool {
        self.os == other.os
            && self.arch == other.arch
            && self.cpus == other.cpus
            && self.insts == other.insts
    }

    /// The median for one phase; `(total)` maps to the end-to-end
    /// time, mirroring the pairwise comparator's pseudo-phase.
    pub fn phase_ns(&self, phase: &str) -> Option<u64> {
        if phase == TOTAL_PHASE {
            return Some(self.total_ns);
        }
        self.phases.iter().find(|(p, _)| p == phase).map(|(_, ns)| *ns)
    }

    /// The median for one canonical cell, by id.
    pub fn cell_ns(&self, id: &str) -> Option<u64> {
        self.cells.iter().find(|(c, _)| c == id).map(|(_, ns)| *ns)
    }
}

/// The pseudo-phase for the end-to-end wall time, shared with the
/// pairwise comparator's table.
pub const TOTAL_PHASE: &str = "(total)";

/// Every `BENCH_*.json` directly inside `dir`, sorted by file name
/// (parse order only — the trajectory order comes from git).
pub fn discover(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut found = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| format!("cannot read {}: {e}", dir.display()))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") && path.is_file() {
            found.push(path);
        }
    }
    found.sort();
    Ok(found)
}

/// The commit timestamp (unix seconds) of a short hash, if it resolves
/// in the repository containing `dir`.
pub fn commit_timestamp(dir: &Path, git: &str) -> Option<u64> {
    if git.is_empty() || !git.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    std::process::Command::new("git")
        .arg("-C")
        .arg(dir)
        .args(["show", "-s", "--format=%ct"])
        .arg(format!("{git}^{{commit}}"))
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .and_then(|s| s.trim().parse().ok())
}

/// Orders baselines along the trajectory: by commit timestamp, with
/// the git short hash as the tie-break (so two baselines sharing a
/// timestamp — or with no resolvable commit at all — still sort the
/// same way on every machine). Unresolvable timestamps sort last.
pub fn order_entries(entries: &mut [BaselineEntry]) {
    entries.sort_by(|a, b| {
        let key = |e: &BaselineEntry| (e.timestamp.unwrap_or(u64::MAX), e.git.clone());
        key(a).cmp(&key(b))
    });
}

/// The whole perf trajectory: every baseline, in git order.
#[derive(Debug)]
pub struct History {
    /// The ordered baselines (see [`order_entries`]).
    pub entries: Vec<BaselineEntry>,
    /// One trajectory annotation per entry (parallel to `entries`):
    /// the `CHANGES.md` summary line of the PR that committed the
    /// baseline, recovered by [`load_history`] from the commit that
    /// added the file. `None` when git can't resolve it. Rendered as
    /// hover text on the dashboard's cells/s points.
    pub annotations: Vec<Option<String>>,
}

/// One cumulative regression found by [`History::cumulative_drift`].
#[derive(Debug, Clone, PartialEq)]
pub struct Drift {
    /// Phase name ([`TOTAL_PHASE`] for the end-to-end time).
    pub phase: String,
    /// Git short hash of the baseline holding the best-ever median.
    pub best_git: String,
    /// Best-ever median, nanoseconds.
    pub best_ns: u64,
    /// The latest baseline's median, nanoseconds.
    pub latest_ns: u64,
    /// Cumulative slowdown vs best-ever, percent.
    pub pct: f64,
}

/// Discovers, parses, validates, timestamps and orders every
/// `BENCH_*.json` in `dir`. Any invalid document is a hard error
/// naming the file — a corrupt baseline must be fixed or removed, not
/// silently dropped from the trajectory.
pub fn load_history(dir: &Path) -> Result<History, String> {
    let files = discover(dir)?;
    if files.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", dir.display()));
    }
    let mut entries = Vec::with_capacity(files.len());
    for path in &files {
        let file = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_string();
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {file}: {e}"))?;
        let doc = ms_prof::jsonv::parse(&text).map_err(|e| format!("{file}: {e}"))?;
        let mut entry = BaselineEntry::from_doc(&doc, &file)?;
        entry.timestamp = commit_timestamp(dir, &entry.git);
        entries.push(entry);
    }
    order_entries(&mut entries);
    let annotations = entries.iter().map(|e| annotation_for(dir, &e.file)).collect();
    Ok(History { entries, annotations })
}

/// The one-line trajectory annotation for a baseline file: the last
/// non-empty `CHANGES.md` line as of the commit that *added* the file
/// — each PR appends its own summary line to `CHANGES.md` and commits
/// the baseline in the same change, so that line describes the PR the
/// point on the dashboard belongs to. `None` outside a repo, for an
/// uncommitted file, or when that commit carries no `CHANGES.md`.
pub fn annotation_for(dir: &Path, file: &str) -> Option<String> {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .arg("-C")
            .arg(dir)
            .args(args)
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
    };
    let adding = git(&["log", "--diff-filter=A", "--format=%H", "-n", "1", "--", file])?;
    let adding = adding.trim();
    if adding.is_empty() {
        return None;
    }
    let changes = git(&["show", &format!("{adding}:CHANGES.md")])?;
    summary_line(&changes)
}

/// The last non-empty line of a `CHANGES.md` body, truncated to ~120
/// chars on a character boundary.
pub fn summary_line(changes: &str) -> Option<String> {
    let line = changes.lines().rev().map(str::trim).find(|l| !l.is_empty())?;
    let mut out: String = line.chars().take(120).collect();
    if line.chars().count() > 120 {
        out.push('…');
    }
    Some(out)
}

/// The best comparable baseline — highest `cells_per_s` among entries
/// [`comparable`](BaselineEntry::comparable) to `like`, ties broken
/// toward the lexicographically-smallest git hash. This is what
/// `run -- perf --baseline best` and `scripts/check.sh` gate against.
pub fn best_baseline<'a>(
    entries: &'a [BaselineEntry],
    like: &BaselineEntry,
) -> Option<&'a BaselineEntry> {
    entries
        .iter()
        .filter(|e| e.comparable(like))
        .min_by(|a, b| b.cells_per_s.total_cmp(&a.cells_per_s).then(a.git.cmp(&b.git)))
}

impl History {
    /// The newest baseline on the trajectory.
    pub fn latest(&self) -> Option<&BaselineEntry> {
        self.entries.last()
    }

    /// The phase list the trend sections iterate: [`TOTAL_PHASE`]
    /// first, then the latest baseline's phases in document order.
    fn trend_phases(&self) -> Vec<String> {
        let mut out = vec![TOTAL_PHASE.to_string()];
        if let Some(latest) = self.latest() {
            out.extend(latest.phases.iter().map(|(p, _)| p.clone()));
        }
        out
    }

    /// Per-phase best-ever: the minimum median among entries *before*
    /// the latest that are comparable to it, as `(git, ns)`.
    fn best_before_latest(&self, phase: &str) -> Option<(String, u64)> {
        let latest = self.latest()?;
        self.entries[..self.entries.len() - 1]
            .iter()
            .filter(|e| e.comparable(latest))
            .filter_map(|e| e.phase_ns(phase).map(|ns| (e.git.clone(), ns)))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The trajectory gate: every phase of the latest baseline that
    /// sits more than `max_regress_pct` percent above its best-ever
    /// median (among comparable predecessors, noise floor honoured).
    /// A phase can pass every pairwise ≤30% step and still land here —
    /// that cumulative bleed is exactly what this catches.
    pub fn cumulative_drift(&self, max_regress_pct: f64, noise_floor_ns: u64) -> Vec<Drift> {
        let Some(latest) = self.latest() else { return Vec::new() };
        let mut out = Vec::new();
        for phase in self.trend_phases() {
            let Some((best_git, best_ns)) = self.best_before_latest(&phase) else { continue };
            let Some(latest_ns) = latest.phase_ns(&phase) else { continue };
            if best_ns < noise_floor_ns || best_ns == 0 {
                continue;
            }
            let pct = 100.0 * (latest_ns as f64 - best_ns as f64) / best_ns as f64;
            if pct > max_regress_pct {
                out.push(Drift { phase, best_git, best_ns, latest_ns, pct });
            }
        }
        out
    }

    /// Per-cell best-ever: the minimum cell median among entries
    /// *before* the latest that are comparable to it, as `(git, ns)`.
    fn best_cell_before_latest(&self, id: &str) -> Option<(String, u64)> {
        let latest = self.latest()?;
        self.entries[..self.entries.len() - 1]
            .iter()
            .filter(|e| e.comparable(latest))
            .filter_map(|e| e.cell_ns(id).map(|ns| (e.git.clone(), ns)))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The per-cell trajectory gate: every canonical cell of the
    /// latest baseline more than `max_regress_pct` percent above its
    /// best-ever median. Independent of [`History::cumulative_drift`]
    /// on purpose — a single cell can regress badly while the phase
    /// aggregate *improves* (every other cell got faster), and only
    /// this gate catches it. Returned as [`Drift`]s with the cell id
    /// in the `phase` field.
    pub fn cell_drift(&self, max_regress_pct: f64, noise_floor_ns: u64) -> Vec<Drift> {
        let Some(latest) = self.latest() else { return Vec::new() };
        let mut out = Vec::new();
        for (id, latest_ns) in &latest.cells {
            let Some((best_git, best_ns)) = self.best_cell_before_latest(id) else { continue };
            if best_ns < noise_floor_ns || best_ns == 0 {
                continue;
            }
            let pct = 100.0 * (*latest_ns as f64 - best_ns as f64) / best_ns as f64;
            if pct > max_regress_pct {
                out.push(Drift {
                    phase: id.clone(),
                    best_git,
                    best_ns,
                    latest_ns: *latest_ns,
                    pct,
                });
            }
        }
        out
    }

    /// The stdout report: one row per baseline (cells/s trajectory),
    /// then the latest baseline's phases against their best-ever
    /// medians. Column glossary in `docs/PERF-HISTORY.md`.
    pub fn trend_table(&self, max_regress_pct: f64, noise_floor_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let Some(latest) = self.latest() else { return out };
        let comparable = self.entries.iter().filter(|e| e.comparable(latest)).count();
        let _ = writeln!(
            out,
            "── perf history: {} baselines ({} comparable to latest) ──",
            self.entries.len(),
            comparable
        );
        let _ = writeln!(
            out,
            "{:<10} {:<11} {:<16} {:>7} {:>5} {:>11} {:>9} {:>8} {:>8}",
            "git", "date", "machine", "insts", "reps", "total", "cells/s", "dprev", "dbest"
        );
        let mut best_so_far: Option<f64> = None;
        let mut prev: Option<f64> = None;
        for entry in &self.entries {
            let in_scope = entry.comparable(latest);
            let dprev = match (in_scope, prev) {
                (true, Some(p)) if p > 0.0 => {
                    format!("{:+.1}%", 100.0 * (entry.cells_per_s - p) / p)
                }
                _ => "-".to_string(),
            };
            let dbest = match (in_scope, best_so_far) {
                (true, Some(b)) if entry.cells_per_s >= b => "best".to_string(),
                (true, Some(b)) if b > 0.0 => {
                    format!("{:+.1}%", 100.0 * (entry.cells_per_s - b) / b)
                }
                (true, None) => "best".to_string(),
                _ => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<10} {:<11} {:<16} {:>7} {:>5} {:>11} {:>9.2} {:>8} {:>8}",
                entry.git,
                entry.timestamp.map_or_else(|| "-".to_string(), utc_date),
                entry.fingerprint(),
                entry.insts,
                entry.reps,
                fmt_ns(entry.total_ns),
                entry.cells_per_s,
                dprev,
                dbest,
            );
            if in_scope {
                prev = Some(entry.cells_per_s);
                best_so_far =
                    Some(best_so_far.map_or(entry.cells_per_s, |b| entry.cells_per_s.max(b)));
            }
        }
        let _ = writeln!(
            out,
            "── phases: latest {} vs best-ever (drift threshold {:.1}%, noise floor {} ns) ──",
            latest.git, max_regress_pct, noise_floor_ns
        );
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>11} {:<10} {:>11} {:>8}  verdict",
            "phase", "spark", "best-ever", "@git", "latest", "dcum"
        );
        for phase in self.trend_phases() {
            let series: Vec<Option<u64>> =
                self.entries.iter().map(|e| e.phase_ns(&phase)).collect();
            let latest_ns = latest.phase_ns(&phase).expect("phase comes from latest");
            let (best_col, git_col, dcum, verdict) = match self.best_before_latest(&phase) {
                None => ("-".to_string(), "-".to_string(), "-".to_string(), "no baseline"),
                Some((best_git, best_ns)) => {
                    let pct = if best_ns > 0 {
                        100.0 * (latest_ns as f64 - best_ns as f64) / best_ns as f64
                    } else {
                        0.0
                    };
                    let verdict = if best_ns < noise_floor_ns {
                        "below noise floor"
                    } else if latest_ns <= best_ns {
                        "new best"
                    } else if pct > max_regress_pct {
                        "DRIFT"
                    } else {
                        "ok"
                    };
                    (fmt_ns(best_ns), best_git, format!("{pct:+.1}%"), verdict)
                }
            };
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>11} {:<10} {:>11} {:>8}  {}",
                phase,
                sparkline(&series),
                best_col,
                git_col,
                fmt_ns(latest_ns),
                dcum,
                verdict
            );
        }
        let _ = writeln!(
            out,
            "── cells: latest {} vs best-ever (per-cell gate, same threshold) ──",
            latest.git
        );
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>11} {:<10} {:>11} {:>8}  verdict",
            "cell", "spark", "best-ever", "@git", "latest", "dcum"
        );
        for (id, latest_ns) in &latest.cells {
            let series: Vec<Option<u64>> = self.entries.iter().map(|e| e.cell_ns(id)).collect();
            let (best_col, git_col, dcum, verdict) = match self.best_cell_before_latest(id) {
                None => ("-".to_string(), "-".to_string(), "-".to_string(), "no baseline"),
                Some((best_git, best_ns)) => {
                    let pct = if best_ns > 0 {
                        100.0 * (*latest_ns as f64 - best_ns as f64) / best_ns as f64
                    } else {
                        0.0
                    };
                    let verdict = if best_ns < noise_floor_ns {
                        "below noise floor"
                    } else if *latest_ns <= best_ns {
                        "new best"
                    } else if pct > max_regress_pct {
                        "DRIFT"
                    } else {
                        "ok"
                    };
                    (fmt_ns(best_ns), best_git, format!("{pct:+.1}%"), verdict)
                }
            };
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>11} {:<10} {:>11} {:>8}  {}",
                id,
                sparkline(&series),
                best_col,
                git_col,
                fmt_ns(*latest_ns),
                dcum,
                verdict
            );
        }
        out
    }

    /// The machine-readable trajectory (`history.json`), schema
    /// [`HISTORY_SCHEMA_VERSION`] — field-by-field table in
    /// `docs/PERF-HISTORY.md`, checked by [`validate_history`].
    pub fn to_json(&self, max_regress_pct: f64, noise_floor_ns: u64) -> String {
        let mut rows = Vec::with_capacity(self.entries.len());
        for e in &self.entries {
            let mut machine = JsonObj::new();
            machine.str("os", &e.os).str("arch", &e.arch).num_u64("cpus", e.cpus);
            let phases: Vec<String> = e
                .phases
                .iter()
                .map(|(p, ns)| {
                    let mut o = JsonObj::new();
                    o.str("phase", p).num_u64("median_ns", *ns);
                    o.finish()
                })
                .collect();
            let cells: Vec<String> = e
                .cells
                .iter()
                .map(|(id, ns)| {
                    let mut o = JsonObj::new();
                    o.str("id", id).num_u64("median_ns", *ns);
                    o.finish()
                })
                .collect();
            let mut o = JsonObj::new();
            o.str("file", &e.file).str("git", &e.git);
            match e.timestamp {
                Some(ts) => o.num_u64("timestamp", ts),
                None => o.raw("timestamp", "null"),
            };
            o.raw("machine", &machine.finish())
                .num_u64("reps", e.reps)
                .num_u64("insts", e.insts)
                .num_u64("total_ns", e.total_ns)
                .num_u64("top_level_ns", e.top_level_ns)
                .num_f64("cells_per_s", e.cells_per_s)
                .raw("phases", &format!("[{}]", phases.join(",")))
                .raw("cells", &format!("[{}]", cells.join(",")));
            rows.push(o.finish());
        }
        let best = self
            .latest()
            .and_then(|latest| best_baseline(&self.entries, latest))
            .map(|b| {
                let mut o = JsonObj::new();
                o.str("git", &b.git).str("file", &b.file).num_f64("cells_per_s", b.cells_per_s);
                o.finish()
            })
            .unwrap_or_else(|| "null".to_string());
        let drift_rows = |drifts: &[Drift], key: &str| -> Vec<String> {
            drifts
                .iter()
                .map(|d| {
                    let mut o = JsonObj::new();
                    o.str(key, &d.phase)
                        .str("best_git", &d.best_git)
                        .num_u64("best_ns", d.best_ns)
                        .num_u64("latest_ns", d.latest_ns)
                        .num_f64("pct", d.pct);
                    o.finish()
                })
                .collect()
        };
        let drift = drift_rows(&self.cumulative_drift(max_regress_pct, noise_floor_ns), "phase");
        let cell_drift = drift_rows(&self.cell_drift(max_regress_pct, noise_floor_ns), "id");
        let mut o = JsonObj::new();
        o.num_u64("schema_version", HISTORY_SCHEMA_VERSION as u64)
            .str("format", HISTORY_FORMAT)
            .str("generated_git", &perfcmd::git_short())
            .num_u64("count", self.entries.len() as u64)
            .num_f64("max_regress_pct", max_regress_pct)
            .num_u64("noise_floor_ns", noise_floor_ns)
            .raw("entries", &format!("[{}]", rows.join(",")))
            .raw("best", &best)
            .raw("drift", &format!("[{}]", drift.join(",")))
            .raw("cell_drift", &format!("[{}]", cell_drift.join(",")));
        o.finish()
    }

    /// The static dashboard (`history.html`): no scripts, no external
    /// assets — inline SVG sparklines over the same data as the trend
    /// table, openable from a file:// URL forever.
    pub fn to_html(&self, max_regress_pct: f64, noise_floor_ns: u64) -> String {
        use std::fmt::Write as _;
        let mut body = String::new();
        let Some(latest) = self.latest() else { return String::new() };

        // Machine-fingerprint legend: one colour per fingerprint, in
        // first-appearance order.
        const PALETTE: [&str; 5] = ["#2563eb", "#d97706", "#059669", "#9333ea", "#dc2626"];
        let mut fingerprints: Vec<String> = Vec::new();
        for e in &self.entries {
            if !fingerprints.contains(&e.fingerprint()) {
                fingerprints.push(e.fingerprint());
            }
        }
        let color_of = |e: &BaselineEntry| {
            let idx = fingerprints.iter().position(|f| *f == e.fingerprint()).unwrap_or(0);
            PALETTE[idx % PALETTE.len()]
        };

        let _ = writeln!(
            body,
            "<h1>perf trajectory</h1>\n<p class=\"sub\">{} baselines · latest \
             <code>{}</code> · generated at <code>{}</code> · schema v{} · \
             <a href=\"history.json\">history.json</a></p>",
            self.entries.len(),
            escape_html(&latest.git),
            escape_html(&perfcmd::git_short()),
            HISTORY_SCHEMA_VERSION,
        );

        let drifts = self.cumulative_drift(max_regress_pct, noise_floor_ns);
        let cell_drifts = self.cell_drift(max_regress_pct, noise_floor_ns);
        if drifts.is_empty() && cell_drifts.is_empty() {
            let _ = writeln!(
                body,
                "<p class=\"ok\">no cumulative drift: every phase and cell of <code>{}</code> \
                 is within {:.1}% of its best-ever median (noise floor {} ns).</p>",
                escape_html(&latest.git),
                max_regress_pct,
                noise_floor_ns
            );
        } else {
            let _ = writeln!(body, "<div class=\"drift\"><strong>cumulative drift</strong><ul>");
            for (d, kind) in
                drifts.iter().map(|d| (d, "phase")).chain(cell_drifts.iter().map(|d| (d, "cell")))
            {
                let _ = writeln!(
                    body,
                    "<li>{} <code>{}</code> is {:+.1}% over its best-ever {} \
                     (<code>{}</code>), now {}</li>",
                    kind,
                    escape_html(&d.phase),
                    d.pct,
                    fmt_ns(d.best_ns),
                    escape_html(&d.best_git),
                    fmt_ns(d.latest_ns)
                );
            }
            let _ = writeln!(body, "</ul></div>");
        }

        // Cells/s trajectory: the headline chart.
        let _ = writeln!(body, "<h2>cells/s</h2>");
        let max_rate = self.entries.iter().map(|e| e.cells_per_s).fold(1.0_f64, f64::max);
        let (w, h, pad) = (640.0, 160.0, 24.0);
        let x_of = |i: usize| {
            if self.entries.len() < 2 {
                w / 2.0
            } else {
                pad + (w - 2.0 * pad) * i as f64 / (self.entries.len() - 1) as f64
            }
        };
        let y_of = |rate: f64| h - pad - (h - 2.0 * pad) * rate / (max_rate * 1.1);
        let points: Vec<String> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| format!("{:.1},{:.1}", x_of(i), y_of(e.cells_per_s)))
            .collect();
        let _ = writeln!(
            body,
            "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\" \
             role=\"img\" aria-label=\"cells per second across baselines\">"
        );
        let _ = writeln!(
            body,
            "<polyline fill=\"none\" stroke=\"#94a3b8\" stroke-width=\"1.5\" points=\"{}\"/>",
            points.join(" ")
        );
        for (i, e) in self.entries.iter().enumerate() {
            // The trajectory annotation (the PR summary that committed
            // this baseline) rides along as hover text.
            let note = self
                .annotations
                .get(i)
                .and_then(|a| a.as_deref())
                .map(|a| format!(" · {}", escape_html(a)))
                .unwrap_or_default();
            let _ = writeln!(
                body,
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"4\" fill=\"{}\">\
                 <title>{} · {} · {:.2} cells/s · insts {}{}</title></circle>",
                x_of(i),
                y_of(e.cells_per_s),
                color_of(e),
                escape_html(&e.git),
                escape_html(&e.fingerprint()),
                e.cells_per_s,
                e.insts,
                note
            );
            let _ = writeln!(
                body,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"tick\">{}</text>",
                x_of(i),
                h - 4.0,
                escape_html(&e.git)
            );
            let _ = writeln!(
                body,
                "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\" class=\"val\">{:.1}</text>",
                x_of(i),
                y_of(e.cells_per_s) - 8.0,
                e.cells_per_s
            );
        }
        let _ = writeln!(body, "</svg>");
        let _ = write!(body, "<p class=\"legend\">");
        for (i, f) in fingerprints.iter().enumerate() {
            let _ = write!(
                body,
                "<span class=\"chip\" style=\"background:{}\"></span>{} &nbsp; ",
                PALETTE[i % PALETTE.len()],
                escape_html(f)
            );
        }
        let _ = writeln!(body, "</p>");

        // Baseline table.
        let _ = writeln!(
            body,
            "<h2>baselines</h2>\n<table><tr><th>git</th><th>date</th><th>machine</th>\
             <th>insts</th><th>reps</th><th>total</th><th>cells/s</th></tr>"
        );
        for e in &self.entries {
            let _ = writeln!(
                body,
                "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td>\
                 <td>{}</td><td>{}</td><td>{:.2}</td></tr>",
                escape_html(&e.git),
                e.timestamp.map_or_else(|| "-".to_string(), utc_date),
                escape_html(&e.fingerprint()),
                e.insts,
                e.reps,
                fmt_ns(e.total_ns),
                e.cells_per_s
            );
        }
        let _ = writeln!(body, "</table>");

        // Per-phase sparklines: latest vs best-ever.
        let _ = writeln!(
            body,
            "<h2>phases</h2>\n<table><tr><th>phase</th><th>trend</th><th>best-ever</th>\
             <th>latest</th><th>&Delta;cum</th></tr>"
        );
        for phase in self.trend_phases() {
            let series: Vec<Option<u64>> =
                self.entries.iter().map(|e| e.phase_ns(&phase)).collect();
            let latest_ns = latest.phase_ns(&phase).expect("phase comes from latest");
            let (best_cell, delta_cell) = match self.best_before_latest(&phase) {
                None => ("-".to_string(), "<td>-</td>".to_string()),
                Some((best_git, best_ns)) => {
                    let pct = if best_ns > 0 {
                        100.0 * (latest_ns as f64 - best_ns as f64) / best_ns as f64
                    } else {
                        0.0
                    };
                    let class = if best_ns < noise_floor_ns {
                        "quiet"
                    } else if pct > max_regress_pct {
                        "bad"
                    } else if latest_ns <= best_ns {
                        "good"
                    } else {
                        "quiet"
                    };
                    (
                        format!("{} <code>{}</code>", fmt_ns(best_ns), escape_html(&best_git)),
                        format!("<td class=\"{class}\">{pct:+.1}%</td>"),
                    )
                }
            };
            let _ = writeln!(
                body,
                "<tr><td><code>{}</code></td><td>{}</td><td>{}</td><td>{}</td>{}</tr>",
                escape_html(&phase),
                svg_sparkline(&series),
                best_cell,
                fmt_ns(latest_ns),
                delta_cell
            );
        }
        let _ = writeln!(body, "</table>");

        format!(
            "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
             <title>perf trajectory</title>\n<style>\n{CSS}\n</style></head>\
             <body>\n{body}</body></html>\n"
        )
    }
}

const CSS: &str = "body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;\
padding:0 1rem;color:#111}\nh1,h2{font-weight:600}\ncode{font:12px ui-monospace,monospace}\n\
table{border-collapse:collapse;margin:.5rem 0}\ntd,th{border:1px solid #e2e8f0;\
padding:.25rem .6rem;text-align:left}\nth{background:#f8fafc}\n.sub,.legend{color:#555}\n\
.tick,.val{font:10px ui-monospace,monospace;fill:#555}\n.chip{display:inline-block;\
width:.7em;height:.7em;border-radius:50%;margin-right:.3em}\n.ok{color:#059669}\n\
.good{color:#059669}\n.bad{color:#dc2626;font-weight:600}\n.quiet{color:#555}\n\
.drift{border:1px solid #dc2626;border-radius:4px;padding:.5rem 1rem;background:#fef2f2}";

/// A unicode sparkline of the series, min-to-max normalised; gaps
/// (entries missing the phase) render as `·`.
pub fn sparkline(series: &[Option<u64>]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let present: Vec<u64> = series.iter().flatten().copied().collect();
    let (Some(&min), Some(&max)) = (present.iter().min(), present.iter().max()) else {
        return "·".repeat(series.len());
    };
    series
        .iter()
        .map(|v| match v {
            None => '·',
            Some(_) if max == min => GLYPHS[3],
            Some(v) => GLYPHS[((v - min) * 7 / (max - min)) as usize],
        })
        .collect()
}

/// An inline-SVG sparkline (polyline over the series, latest point
/// marked) for the HTML dashboard.
fn svg_sparkline(series: &[Option<u64>]) -> String {
    use std::fmt::Write as _;
    let present: Vec<u64> = series.iter().flatten().copied().collect();
    let (Some(&min), Some(&max)) = (present.iter().min(), present.iter().max()) else {
        return String::new();
    };
    let (w, h, pad) = (120.0, 24.0, 3.0);
    let x_of = |i: usize| {
        if series.len() < 2 {
            w / 2.0
        } else {
            pad + (w - 2.0 * pad) * i as f64 / (series.len() - 1) as f64
        }
    };
    let y_of = |v: u64| {
        if max == min {
            h / 2.0
        } else {
            h - pad - (h - 2.0 * pad) * (v - min) as f64 / (max - min) as f64
        }
    };
    let points: Vec<String> = series
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| format!("{:.1},{:.1}", x_of(i), y_of(v))))
        .collect();
    let mut svg = format!(
        "<svg viewBox=\"0 0 {w:.0} {h:.0}\" width=\"{w:.0}\" height=\"{h:.0}\">\
         <polyline fill=\"none\" stroke=\"#2563eb\" stroke-width=\"1.2\" points=\"{}\"/>",
        points.join(" ")
    );
    if let Some((i, Some(v))) = series.iter().copied().enumerate().rev().find(|(_, v)| v.is_some())
    {
        let _ = write!(
            svg,
            "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"#2563eb\"/>",
            x_of(i),
            y_of(v)
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Minimal HTML text escaping for the generated dashboard.
fn escape_html(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// A unix timestamp as a UTC `YYYY-MM-DD` date (civil-from-days,
/// Gregorian; no clock or timezone dependency).
pub fn utc_date(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

// ------------------------------------------------------------ validation

fn req_u64(doc: &Value, key: &str) -> Result<u64, String> {
    doc.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn req_str<'a>(doc: &'a Value, key: &str) -> Result<&'a str, String> {
    doc.get(key).and_then(Value::as_str).ok_or_else(|| format!("missing or non-string `{key}`"))
}

/// Checks a parsed `history.json` against the history schema
/// ([`HISTORY_SCHEMA_VERSION`]): version and format tags, the entry
/// list (each entry re-checked for the `top_level_ns ≤ total_ns`
/// invariant — a baseline that fails it is rejected, not skipped),
/// the best pointer and the drift list. `run -- perf-validate`
/// dispatches here for `format == "ms-perf-history"`.
pub fn validate_history(doc: &Value) -> Result<(), String> {
    let version = req_u64(doc, "schema_version")?;
    if version != HISTORY_SCHEMA_VERSION as u64 {
        return Err(format!(
            "schema_version {version} (this tool reads v{HISTORY_SCHEMA_VERSION})"
        ));
    }
    let format = req_str(doc, "format")?;
    if format != HISTORY_FORMAT {
        return Err(format!("format `{format}` (expected `{HISTORY_FORMAT}`)"));
    }
    req_str(doc, "generated_git")?;
    doc.get("max_regress_pct")
        .and_then(Value::as_f64)
        .ok_or("missing or non-numeric `max_regress_pct`")?;
    req_u64(doc, "noise_floor_ns")?;
    let count = req_u64(doc, "count")?;
    let entries = doc.get("entries").and_then(Value::as_arr).ok_or("missing `entries` array")?;
    if entries.is_empty() {
        return Err("empty `entries` array".to_string());
    }
    if count != entries.len() as u64 {
        return Err(format!("count {count} but {} entries", entries.len()));
    }
    for entry in entries {
        let file = req_str(entry, "file")?.to_string();
        let in_file = |e: String| format!("entry `{file}`: {e}");
        req_str(entry, "git").map_err(in_file.clone())?;
        match entry.get("timestamp") {
            Some(Value::Null) | Some(Value::Num(_)) => {}
            _ => return Err(in_file("missing or non-numeric `timestamp`".to_string())),
        }
        let machine = entry.get("machine").ok_or_else(|| in_file("missing `machine`".into()))?;
        req_str(machine, "os").map_err(in_file.clone())?;
        req_str(machine, "arch").map_err(in_file.clone())?;
        req_u64(machine, "cpus").map_err(in_file.clone())?;
        req_u64(entry, "reps").map_err(in_file.clone())?;
        req_u64(entry, "insts").map_err(in_file.clone())?;
        let total = req_u64(entry, "total_ns").map_err(in_file.clone())?;
        let top = req_u64(entry, "top_level_ns").map_err(in_file.clone())?;
        if top > total {
            return Err(in_file(format!("top_level_ns {top} exceeds total_ns {total}")));
        }
        entry
            .get("cells_per_s")
            .and_then(Value::as_f64)
            .ok_or_else(|| in_file("missing or non-numeric `cells_per_s`".into()))?;
        let phases = entry
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or_else(|| in_file("missing `phases` array".into()))?;
        if phases.is_empty() {
            return Err(in_file("empty `phases` array".into()));
        }
        for phase in phases {
            req_str(phase, "phase").map_err(in_file.clone())?;
            req_u64(phase, "median_ns").map_err(in_file.clone())?;
        }
        let cells = entry
            .get("cells")
            .and_then(Value::as_arr)
            .ok_or_else(|| in_file("missing `cells` array".into()))?;
        for cell in cells {
            req_str(cell, "id").map_err(in_file.clone())?;
            req_u64(cell, "median_ns").map_err(in_file.clone())?;
        }
    }
    match doc.get("best") {
        Some(Value::Null) => {}
        Some(best) => {
            req_str(best, "git")?;
            req_str(best, "file")?;
            best.get("cells_per_s")
                .and_then(Value::as_f64)
                .ok_or("missing or non-numeric `best.cells_per_s`")?;
        }
        None => return Err("missing `best`".to_string()),
    }
    for drift in doc.get("drift").and_then(Value::as_arr).ok_or("missing `drift` array")? {
        req_str(drift, "phase")?;
        req_str(drift, "best_git")?;
        req_u64(drift, "best_ns")?;
        req_u64(drift, "latest_ns")?;
        drift.get("pct").and_then(Value::as_f64).ok_or("missing or non-numeric `drift.pct`")?;
    }
    let cell_drift =
        doc.get("cell_drift").and_then(Value::as_arr).ok_or("missing `cell_drift` array")?;
    for drift in cell_drift {
        req_str(drift, "id")?;
        req_str(drift, "best_git")?;
        req_u64(drift, "best_ns")?;
        req_u64(drift, "latest_ns")?;
        drift
            .get("pct")
            .and_then(Value::as_f64)
            .ok_or("missing or non-numeric `cell_drift.pct`")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn history(entries: Vec<BaselineEntry>) -> History {
        History { annotations: vec![None; entries.len()], entries }
    }

    pub(crate) fn entry(git: &str, ts: Option<u64>, total_ns: u64) -> BaselineEntry {
        BaselineEntry {
            file: format!("BENCH_{git}.json"),
            git: git.to_string(),
            timestamp: ts,
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            cpus: 1,
            reps: 5,
            insts: 60_000,
            total_ns,
            top_level_ns: total_ns - total_ns / 100,
            cells_per_s: 6.0 / (total_ns as f64 / 1e9),
            phases: vec![
                ("sim.run".to_string(), total_ns - total_ns / 10),
                ("tiny".to_string(), 100),
            ],
            cells: vec![("compress-cf".to_string(), total_ns / 6)],
        }
    }

    #[test]
    fn ordering_uses_timestamp_then_hash_tie_break() {
        // Two baselines sharing a timestamp order by git short hash;
        // an unresolvable timestamp sorts last.
        let mut entries = vec![
            entry("beta000", Some(100), 1_000_000),
            entry("zzz9999", None, 1_000_000),
            entry("alpha00", Some(100), 1_000_000),
            entry("newer00", Some(200), 1_000_000),
        ];
        order_entries(&mut entries);
        let gits: Vec<&str> = entries.iter().map(|e| e.git.as_str()).collect();
        assert_eq!(gits, ["alpha00", "beta000", "newer00", "zzz9999"]);
        // Stability: re-sorting an already-ordered list changes nothing.
        let before = entries.clone();
        order_entries(&mut entries);
        assert_eq!(entries, before);
    }

    #[test]
    fn cumulative_drift_catches_slow_bleed_under_the_step_threshold() {
        // +20% then +25%: every pairwise step passes a 30% gate, the
        // +50% cumulative drift does not.
        let history = history(vec![
            entry("aaa0001", Some(1), 10_000_000),
            entry("aaa0002", Some(2), 12_000_000),
            entry("aaa0003", Some(3), 15_000_000),
        ]);
        let step1 = 100.0 * (12.0 - 10.0) / 10.0;
        let step2 = 100.0 * (15.0 - 12.0) / 12.0;
        assert!(step1 < 30.0 && step2 < 30.0);
        let drifts = history.cumulative_drift(30.0, 200_000);
        assert_eq!(drifts.len(), 2, "{drifts:?}"); // (total) and sim.run
        assert_eq!(drifts[0].phase, TOTAL_PHASE);
        assert_eq!(drifts[0].best_git, "aaa0001");
        assert!((drifts[0].pct - 50.0).abs() < 1e-9);
        assert_eq!(drifts[1].phase, "sim.run");
        // The sub-floor `tiny` phase never gates.
        assert!(drifts.iter().all(|d| d.phase != "tiny"));
    }

    #[test]
    fn drift_ignores_incomparable_machines_and_improvements() {
        let mut other_machine = entry("aaa0001", Some(1), 10_000_000);
        other_machine.cpus = 64;
        let history = history(vec![other_machine, entry("aaa0002", Some(2), 20_000_000)]);
        assert!(history.cumulative_drift(30.0, 200_000).is_empty());
        assert!(history.cell_drift(30.0, 200_000).is_empty());
        let improving = history_of(&[("aaa0001", 1, 15_000_000), ("aaa0002", 2, 10_000_000)]);
        assert!(improving.cumulative_drift(30.0, 200_000).is_empty());
        assert!(improving.cell_drift(30.0, 200_000).is_empty());
    }

    fn history_of(specs: &[(&str, u64, u64)]) -> History {
        history(specs.iter().map(|(g, ts, ns)| entry(g, Some(*ts), *ns)).collect())
    }

    #[test]
    fn cell_drift_catches_a_regression_hidden_by_an_aggregate_improvement() {
        // The aggregate improves 12ms → 10ms (a "new best" everywhere
        // the phase gate looks), but one cell regresses +60%: the
        // other cells got faster and are masking it.
        let mut old = entry("aaa0001", Some(1), 12_000_000);
        old.cells = vec![("compress-cf".to_string(), 1_000_000), ("li-dd".to_string(), 11_000_000)];
        let mut new = entry("aaa0002", Some(2), 10_000_000);
        new.cells = vec![("compress-cf".to_string(), 1_600_000), ("li-dd".to_string(), 8_400_000)];
        let history = history(vec![old, new]);
        assert!(
            history.cumulative_drift(30.0, 200_000).is_empty(),
            "the aggregate gate must pass — that's the point"
        );
        let drifts = history.cell_drift(30.0, 200_000);
        assert_eq!(drifts.len(), 1, "{drifts:?}");
        assert_eq!(drifts[0].phase, "compress-cf");
        assert_eq!(drifts[0].best_git, "aaa0001");
        assert!((drifts[0].pct - 60.0).abs() < 1e-9, "{}", drifts[0].pct);
        // And the trend table's cells section reports the same story.
        let table = history.trend_table(30.0, 200_000);
        assert!(table.contains("── cells:"), "{table}");
        let cell_row = table.lines().find(|l| l.starts_with("compress-cf")).unwrap();
        assert!(cell_row.contains("DRIFT"), "{cell_row}");
        let ok_row = table.lines().find(|l| l.starts_with("li-dd")).unwrap();
        assert!(ok_row.contains("new best"), "{ok_row}");
    }

    #[test]
    fn cell_drift_honours_the_noise_floor_and_comparability() {
        // A sub-floor cell never gates, however large the ratio.
        let mut old = entry("aaa0001", Some(1), 10_000_000);
        old.cells = vec![("tiny-cell".to_string(), 1_000)];
        let mut new = entry("aaa0002", Some(2), 10_000_000);
        new.cells = vec![("tiny-cell".to_string(), 100_000)];
        assert!(history(vec![old, new]).cell_drift(30.0, 200_000).is_empty());
    }

    #[test]
    fn summary_lines_come_from_the_changelog_tail() {
        assert_eq!(
            summary_line("# Changes\n\nPR 1: first\nPR 2: second\n\n"),
            Some("PR 2: second".to_string())
        );
        assert_eq!(summary_line("\n  \n"), None);
        let long = format!("PR 3: {}", "x".repeat(200));
        let s = summary_line(&long).unwrap();
        assert_eq!(s.chars().count(), 121, "120 chars + ellipsis");
        assert!(s.ends_with('…'));
    }

    #[test]
    fn best_baseline_picks_fastest_comparable() {
        let entries = vec![
            entry("aaa0001", Some(1), 20_000_000),
            entry("aaa0002", Some(2), 10_000_000),
            entry("aaa0003", Some(3), 15_000_000),
        ];
        let like = entry("current", None, 12_000_000);
        assert_eq!(best_baseline(&entries, &like).unwrap().git, "aaa0002");
        let mut alien = like.clone();
        alien.insts = 99;
        assert!(best_baseline(&entries, &alien).is_none());
    }

    #[test]
    fn history_json_round_trips_through_its_validator() {
        let history = history(vec![
            entry("aaa0001", Some(1_700_000_000), 10_000_000),
            entry("aaa0002", None, 12_000_000),
        ]);
        let json = history.to_json(30.0, 200_000);
        let doc = ms_prof::jsonv::parse(&json).expect("history.json parses");
        validate_history(&doc).expect("history.json validates");
        // And the validator actually rejects breakage.
        let bad = json.replace("\"format\":\"ms-perf-history\"", "\"format\":\"nonsense\"");
        let bad = ms_prof::jsonv::parse(&bad).unwrap();
        assert!(validate_history(&bad).unwrap_err().contains("format"));
    }

    #[test]
    fn sparkline_normalises_and_marks_gaps() {
        assert_eq!(sparkline(&[Some(0), Some(7), None, Some(3)]), "▁█·▄");
        assert_eq!(sparkline(&[Some(5), Some(5)]), "▄▄");
        assert_eq!(sparkline(&[None, None]), "··");
    }

    #[test]
    fn utc_dates_are_civil() {
        assert_eq!(utc_date(0), "1970-01-01");
        assert_eq!(utc_date(951_782_400), "2000-02-29");
        assert_eq!(utc_date(1_754_006_400), "2025-08-01");
    }

    #[test]
    fn html_is_self_contained_and_escaped() {
        // The odd phase goes on the *latest* entry — the phase section
        // iterates the latest baseline's phase list.
        let mut e = entry("aaa0002", Some(2), 9_000_000);
        e.phases.push(("weird<&>\"phase".to_string(), 5_000_000));
        let mut history = history(vec![entry("aaa0001", Some(1), 10_000_000), e]);
        history.annotations[1] = Some("PR 9: sharper <tasks>".to_string());
        let html = history.to_html(30.0, 200_000);
        assert!(
            html.contains("PR 9: sharper &lt;tasks&gt;"),
            "annotation must appear escaped as hover text"
        );
        assert!(html.starts_with("<!doctype html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("weird&lt;&amp;&gt;&quot;phase"));
        assert!(!html.contains("<script"));
        assert!(!html.contains("http://") && !html.contains("https://"), "no external assets");
    }
}
