//! The one flag parser every `run` subcommand shares, plus `run --
//! help`.
//!
//! Historically the sweep, trace and single-run paths each interpreted
//! their flags inline; this module owns the complete flag vocabulary
//! (`--out` / `--jobs` included) so every subcommand accepts the same
//! spellings, and renders the help text that names each subcommand with
//! the schema version of the artifact it writes.

use std::path::PathBuf;

use crate::error::BenchError;
use crate::perfcmd::{DEFAULT_MAX_REGRESS_PCT, DEFAULT_NOISE_FLOOR_NS, DEFAULT_PERF_REPS};
use crate::sweeps::SWEEP_NAMES;
use crate::Heuristic;

/// Every flag any `run` subcommand accepts, with its default. Flags
/// meaningless to a given subcommand are accepted and ignored (so
/// wrapper scripts can pass one flag set everywhere).
#[derive(Debug, Clone)]
pub struct Flags {
    /// `--strategy bb|cf|dd|ts|cost|oracle` (default cf).
    pub strategy: Heuristic,
    /// `--pus N` (default 4).
    pub pus: usize,
    /// `--in-order`.
    pub in_order: bool,
    /// `--insts N`; `None` lets each subcommand pick its default
    /// (100 000 for single runs and traces, the sweep budget for perf).
    pub insts: Option<usize>,
    /// `--seed N` (default [`crate::DEFAULT_SEED`]).
    pub seed: u64,
    /// `--targets N` (default 4).
    pub targets: usize,
    /// `--no-dead-reg` clears this (default true).
    pub dead_reg: bool,
    /// `--json` (single-run machine-readable output).
    pub json: bool,
    /// `--file path.msir` (run a textual-IR program).
    pub file: Option<String>,
    /// `--dump-ir`.
    pub dump_ir: bool,
    /// `--jobs N` (default: available cores).
    pub jobs: usize,
    /// `--out DIR` (default `target/experiments`).
    pub out: PathBuf,
    /// `--reps N`: timed repetitions for `perf` (default
    /// [`DEFAULT_PERF_REPS`]).
    pub reps: usize,
    /// `--baseline FILE`: enable the perf-regression gate against a
    /// previous `BENCH_*.json`; the literal value `best` auto-selects
    /// the best-ever comparable baseline from the `BENCH_*.json` files
    /// in the current directory.
    pub baseline: Option<PathBuf>,
    /// `--max-regress PCT`: per-phase regression threshold (default
    /// [`DEFAULT_MAX_REGRESS_PCT`]).
    pub max_regress: f64,
    /// `--noise-floor-ns N`: baseline phases faster than this are not
    /// gated (default [`DEFAULT_NOISE_FLOOR_NS`]).
    pub noise_floor_ns: u64,
    /// `--bench-out FILE`: where `perf` writes the `BENCH_*.json`
    /// (default `BENCH_<gitshort>.json` in the current directory).
    pub bench_out: Option<PathBuf>,
    /// `--seeds N`: fuzz cases for `fuzz` (default
    /// [`DEFAULT_FUZZ_SEEDS`]).
    pub seeds: u64,
    /// `--max-blocks N`: generated-program size cap for `fuzz`.
    pub max_blocks: usize,
    /// `--inject`: enable the engine's test-only fault injection so the
    /// fuzz loop demonstrably fails (a self-test of the harness).
    pub inject: bool,
    /// `--oracle-max-blocks N`: largest function (reachable blocks) the
    /// `oracle` policy and `gap` subcommand partition exactly (default
    /// [`ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS`]).
    pub oracle_max_blocks: usize,
    /// `--no-gate`: `perf-history` reports cumulative drift without
    /// failing the process (the trajectory gate's escape hatch).
    pub no_gate: bool,
    /// `--quiet`: suppress the live stderr progress line (equivalent to
    /// setting `MS_NO_PROGRESS`; artifacts are identical either way).
    pub quiet: bool,
    /// `--last N`: how many records `runs` lists (default 20).
    pub last: usize,
    /// `--cmd NAME`: filter `runs` to one subcommand's records.
    pub cmd_filter: Option<String>,
}

/// Default fuzz cases per `run -- fuzz` sweep.
pub const DEFAULT_FUZZ_SEEDS: u64 = 100;

impl Default for Flags {
    fn default() -> Self {
        Flags {
            strategy: Heuristic::ControlFlow,
            pus: 4,
            in_order: false,
            insts: None,
            seed: crate::DEFAULT_SEED,
            targets: 4,
            dead_reg: true,
            json: false,
            file: None,
            dump_ir: false,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            out: PathBuf::from("target/experiments"),
            reps: DEFAULT_PERF_REPS,
            baseline: None,
            max_regress: DEFAULT_MAX_REGRESS_PCT,
            noise_floor_ns: DEFAULT_NOISE_FLOOR_NS,
            bench_out: None,
            seeds: DEFAULT_FUZZ_SEEDS,
            max_blocks: ms_conform::FuzzParams::default().max_blocks,
            inject: false,
            oracle_max_blocks: ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS,
            no_gate: false,
            quiet: false,
            last: 20,
            cmd_filter: None,
        }
    }
}

/// Parses an argument stream into positional words (subcommand and its
/// operands, in order) and the shared [`Flags`].
pub fn parse(args: impl Iterator<Item = String>) -> Result<(Vec<String>, Flags), BenchError> {
    let mut flags = Flags::default();
    let mut positionals = Vec::new();
    let mut it = args;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| BenchError::Usage(format!("missing value for {name}")))
        };
        match arg.as_str() {
            "--strategy" => {
                flags.strategy = match value("--strategy")?.as_str() {
                    "bb" => Heuristic::BasicBlock,
                    "cf" => Heuristic::ControlFlow,
                    "dd" => Heuristic::DataDependence,
                    "ts" => Heuristic::TaskSize,
                    "cost" => Heuristic::Cost,
                    "oracle" => Heuristic::Oracle,
                    other => {
                        let names: Vec<&'static str> =
                            Heuristic::extended().iter().map(|h| h.label()).collect();
                        let hint = crate::error::closest(other, &names)
                            .map(|s| format!(" (did you mean `{s}`?)"))
                            .unwrap_or_default();
                        return Err(BenchError::Usage(format!(
                            "unknown strategy `{other}`{hint}; see `run -- policies`"
                        )));
                    }
                }
            }
            "--pus" => {
                flags.pus =
                    value("--pus")?.parse().map_err(|e| BenchError::Usage(format!("--pus: {e}")))?
            }
            "--in-order" => flags.in_order = true,
            "--insts" => {
                flags.insts = Some(
                    value("--insts")?
                        .parse()
                        .map_err(|e| BenchError::Usage(format!("--insts: {e}")))?,
                )
            }
            "--seed" => {
                flags.seed = value("--seed")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--seed: {e}")))?
            }
            "--targets" => {
                flags.targets = value("--targets")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--targets: {e}")))?
            }
            "--no-dead-reg" => flags.dead_reg = false,
            "--json" => flags.json = true,
            "--file" => flags.file = Some(value("--file")?),
            "--dump-ir" => flags.dump_ir = true,
            "--jobs" => {
                flags.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--jobs: {e}")))?
            }
            "--out" => flags.out = PathBuf::from(value("--out")?),
            "--reps" => {
                flags.reps = value("--reps")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--reps: {e}")))?;
                if flags.reps == 0 {
                    return Err(BenchError::Usage("--reps must be at least 1".into()));
                }
            }
            "--baseline" => flags.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--max-regress" => {
                flags.max_regress = value("--max-regress")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--max-regress: {e}")))?
            }
            "--noise-floor-ns" => {
                flags.noise_floor_ns = value("--noise-floor-ns")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--noise-floor-ns: {e}")))?
            }
            "--bench-out" => flags.bench_out = Some(PathBuf::from(value("--bench-out")?)),
            "--seeds" => {
                flags.seeds = value("--seeds")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--seeds: {e}")))?;
                if flags.seeds == 0 {
                    return Err(BenchError::Usage("--seeds must be at least 1".into()));
                }
            }
            "--max-blocks" => {
                flags.max_blocks = value("--max-blocks")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--max-blocks: {e}")))?;
                if flags.max_blocks == 0 {
                    return Err(BenchError::Usage("--max-blocks must be at least 1".into()));
                }
            }
            "--inject" => flags.inject = true,
            "--no-gate" => flags.no_gate = true,
            "--quiet" => flags.quiet = true,
            "--last" => {
                flags.last = value("--last")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--last: {e}")))?;
                if flags.last == 0 {
                    return Err(BenchError::Usage("--last must be at least 1".into()));
                }
            }
            "--cmd" => flags.cmd_filter = Some(value("--cmd")?),
            "--oracle-max-blocks" => {
                flags.oracle_max_blocks = value("--oracle-max-blocks")?
                    .parse()
                    .map_err(|e| BenchError::Usage(format!("--oracle-max-blocks: {e}")))?;
                if flags.oracle_max_blocks == 0 {
                    return Err(BenchError::Usage("--oracle-max-blocks must be at least 1".into()));
                }
            }
            "-h" | "--help" => positionals.insert(0, "help".to_string()),
            other if !other.starts_with("--") => positionals.push(other.to_string()),
            other => {
                return Err(BenchError::Usage(format!(
                    "unknown argument `{other}` (see `run -- help`)"
                )))
            }
        }
    }
    Ok((positionals, flags))
}

/// The `run -- help` text: every subcommand, the artifact it writes,
/// and that artifact's schema version.
pub fn help_text() -> String {
    format!(
        "run — the Multiscalar experiment driver (see EXPERIMENTS.md)

subcommands
  <benchmark> | all      one simulation; prints SimStats (--json for one-line JSON)
  sweeps                 all eight experiment grids, in order
  {sweeps}
                         one grid -> <out>/<sweep>/*.json      [metrics schema v{metrics}]
  trace <benchmark>      one traced run -> <out>/trace/<bench>-<strategy>.jsonl
                         + .chrome.json, plus attribution tables [trace schema v{trace}]
  perf                   profile the canonical cells -> BENCH_<gitshort>.json
                         + <out>/perf/pipeline.chrome.json      [perf schema v{perf}]
  perf-validate <file>   check a BENCH_*.json or history.json against its schema
                         (dispatches on the `format` field), exit non-zero on a
                         mismatch
  perf-history [DIR]     aggregate the BENCH_*.json baselines in DIR (default .)
                         into a trend table + <out>/perf/history.html +
                         history.json; exit non-zero on cumulative drift vs the
                         best-ever baseline (docs/PERF-HISTORY.md)
                                                             [history schema v{history}]
  fuzz                   differential conformance fuzzing: random programs x all
                         heuristics vs the sequential reference model; minimal repros
                         -> <out>/fuzz/seed<seed>-<strategy>.msir, exit non-zero on
                         any failure (see docs/CONFORMANCE.md)
  gap <benchmark> | all  heuristic-vs-optimal table: every policy against the exact
                         oracle on the benchmark's small functions (docs/POLICIES.md)
  policies               the selection-policy registry, one line per policy
  runs                   list recorded runs, newest first (every sweep/perf/
                         perf-history/trace/fuzz/gap invocation leaves a JSONL
                         run record under target/experiments/runs/)
                                                              [ledger schema v{ledger}]
  runs show <id>         replay one run record: header, events, footer
  runs-validate [FILE]   check run records against the ledger schema, exit
                         non-zero on any invalid record (docs/OBSERVABILITY.md)
  list                   enumerate sweeps (with schema versions) and benchmarks
  help                   this text

shared flags      --out DIR (default target/experiments)   --jobs N (default: cores)
                  --quiet (no live progress line; MS_NO_PROGRESS=1 equivalent)
single-run flags  --strategy bb|cf|dd|ts|cost|oracle  --pus N  --in-order  --insts N
                  --seed N  --targets N  --no-dead-reg  --json  --file path.msir
                  --dump-ir
perf flags        --reps N (default {reps})  --insts N  --bench-out FILE
                  --baseline FILE|best  --max-regress PCT (default {regress})
                  --noise-floor-ns N (default {floor})  --no-gate
perf-history flags --max-regress PCT  --noise-floor-ns N  --no-gate (report
                  cumulative drift without failing)
fuzz flags        --seeds N (default {seeds})  --max-blocks N (default {blocks})
                  --insts N  --seed N (base seed)  --inject (fault-injection self-test)
gap flags         --oracle-max-blocks N (default {oracle})  --insts N  --seed N
                  --targets N  --pus N
runs flags        --last N (default 20)  --cmd NAME (filter to one subcommand)

The perf-regression gate: `run -- perf --baseline BENCH_old.json` (or `--baseline
best` to auto-select the best-ever comparable committed baseline) exits non-zero
if any phase slower than the noise floor regressed by more than --max-regress
percent; `run -- perf-history` additionally gates drift accumulated across the
whole trajectory. docs/PROFILING.md documents the BENCH_*.json convention and
docs/PERF-HISTORY.md the trend engine.
",
        sweeps = SWEEP_NAMES.join(" | "),
        metrics = crate::sweeps::SCHEMA_VERSION,
        trace = ms_sim::TRACE_SCHEMA_VERSION,
        perf = crate::perfcmd::PERF_SCHEMA_VERSION,
        history = crate::historycmd::HISTORY_SCHEMA_VERSION,
        ledger = ms_prof::ledger::LEDGER_SCHEMA_VERSION,
        reps = DEFAULT_PERF_REPS,
        regress = DEFAULT_MAX_REGRESS_PCT,
        floor = DEFAULT_NOISE_FLOOR_NS,
        seeds = DEFAULT_FUZZ_SEEDS,
        blocks = ms_conform::FuzzParams::default().max_blocks,
        oracle = ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS,
    )
}

/// The `run -- policies` text: every registered selection policy with
/// its one-line semantics, straight from the core registry (so the list
/// can never drift from the code).
pub fn policies_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("selection policies (--strategy NAME; see docs/POLICIES.md):\n");
    for p in ms_tasksel::policies() {
        let _ = writeln!(out, "  {:<8} {}", p.name(), p.summary());
    }
    let _ = writeln!(
        out,
        "  {:<8} {}",
        "ts", "dd after task-size preprocessing (unroll small loops, include small calls)"
    );
    out
}

/// The `run -- list` text: the typed sweep registry and the workload
/// suite (factored out of the binary so the golden test can pin it).
pub fn list_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("sweeps (per-cell metrics artifacts under --out):\n");
    for spec in crate::sweeps::SweepSpec::ALL {
        let _ = writeln!(
            out,
            "  {:<12} schema v{}  {}",
            spec.name(),
            spec.schema_version(),
            spec.describe()
        );
    }
    out.push_str("benchmarks (single runs; also the sweeps' workloads):\n");
    for w in ms_workloads::suite() {
        let _ = writeln!(out, "  {}", w.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(words: &[&str]) -> (Vec<String>, Flags) {
        parse(words.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn defaults_and_positional_order() {
        let (pos, flags) = parse_ok(&["trace", "compress", "--pus", "8"]);
        assert_eq!(pos, ["trace", "compress"]);
        assert_eq!(flags.pus, 8);
        assert_eq!(flags.insts, None);
        assert!(flags.dead_reg);
    }

    #[test]
    fn every_subcommand_shares_out_and_jobs() {
        for cmd in ["sweeps", "figure5", "trace", "perf", "compress"] {
            let (pos, flags) = parse_ok(&[cmd, "--out", "/tmp/x", "--jobs", "3"]);
            assert_eq!(pos[0], cmd);
            assert_eq!(flags.out, PathBuf::from("/tmp/x"));
            assert_eq!(flags.jobs, 3);
        }
    }

    #[test]
    fn perf_flags_parse() {
        let (_, flags) = parse_ok(&[
            "perf",
            "--reps",
            "3",
            "--baseline",
            "BENCH_old.json",
            "--max-regress",
            "12.5",
            "--noise-floor-ns",
            "1000",
            "--bench-out",
            "/tmp/BENCH_new.json",
        ]);
        assert_eq!(flags.reps, 3);
        assert_eq!(flags.baseline, Some(PathBuf::from("BENCH_old.json")));
        assert_eq!(flags.max_regress, 12.5);
        assert_eq!(flags.noise_floor_ns, 1000);
        assert_eq!(flags.bench_out, Some(PathBuf::from("/tmp/BENCH_new.json")));
    }

    #[test]
    fn rejects_unknown_flags_and_zero_reps() {
        assert!(parse(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(
            parse(["perf".to_string(), "--reps".to_string(), "0".to_string()].into_iter()).is_err()
        );
    }

    #[test]
    fn strategy_suggestions_and_new_names() {
        let (_, flags) = parse_ok(&["compress", "--strategy", "oracle"]);
        assert_eq!(flags.strategy, Heuristic::Oracle);
        let (_, flags) = parse_ok(&["compress", "--strategy", "cost", "--oracle-max-blocks", "9"]);
        assert_eq!(flags.strategy, Heuristic::Cost);
        assert_eq!(flags.oracle_max_blocks, 9);
        let err = parse(
            ["compress".to_string(), "--strategy".to_string(), "oracel".to_string()].into_iter(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `oracle`?"), "{err}");
    }

    #[test]
    fn policies_text_lists_every_registered_policy() {
        let text = policies_text();
        for name in ms_tasksel::policy_names() {
            assert!(text.contains(name), "policies text must mention `{name}`");
        }
    }

    #[test]
    fn help_lists_every_subcommand_and_schema_version() {
        let text = help_text();
        for cmd in [
            "sweeps",
            "trace",
            "perf",
            "perf-validate",
            "perf-history",
            "list",
            "help",
            "all",
            "gap",
            "policies",
            "runs",
            "runs-validate",
        ] {
            assert!(text.contains(cmd), "help must mention `{cmd}`");
        }
        for sweep in SWEEP_NAMES {
            assert!(text.contains(sweep), "help must mention sweep `{sweep}`");
        }
        assert!(text.contains(&format!("metrics schema v{}", crate::sweeps::SCHEMA_VERSION)));
        assert!(text.contains(&format!("trace schema v{}", ms_sim::TRACE_SCHEMA_VERSION)));
        assert!(text.contains(&format!("perf schema v{}", crate::perfcmd::PERF_SCHEMA_VERSION)));
        assert!(text
            .contains(&format!("history schema v{}", crate::historycmd::HISTORY_SCHEMA_VERSION)));
        assert!(
            text.contains(&format!("ledger schema v{}", ms_prof::ledger::LEDGER_SCHEMA_VERSION))
        );
    }

    #[test]
    fn runs_flags_parse() {
        let (pos, flags) = parse_ok(&["runs", "--last", "5", "--cmd", "perf", "--quiet"]);
        assert_eq!(pos, ["runs"]);
        assert_eq!(flags.last, 5);
        assert_eq!(flags.cmd_filter.as_deref(), Some("perf"));
        assert!(flags.quiet);
        assert!(
            parse(["runs".to_string(), "--last".to_string(), "0".to_string()].into_iter()).is_err()
        );
    }

    #[test]
    fn history_flags_parse() {
        let (pos, flags) = parse_ok(&["perf-history", "/tmp/baselines", "--no-gate"]);
        assert_eq!(pos, ["perf-history", "/tmp/baselines"]);
        assert!(flags.no_gate);
        let (_, flags) = parse_ok(&["perf-history"]);
        assert!(!flags.no_gate);
    }
}
