//! The one declarative CLI every `run` subcommand shares.
//!
//! Historically the sweep, trace and single-run paths each interpreted
//! their flags inline; later a shared parser owned the vocabulary but
//! still spelled every flag twice (once in the `match`, once in the
//! hand-written help). This module finishes the unification: the
//! complete flag vocabulary is one table of [`FlagSpec`]s (spelling,
//! metavar, help group, default, apply function) and the subcommand
//! registry is one table of [`SubcommandSpec`]s — the parser, `run --
//! help`, and the nearest-match suggestions are all generated from
//! them, so a flag or subcommand can never exist without appearing in
//! the help (pinned by `tests/cli_golden.rs`).

use std::path::PathBuf;

use crate::error::{closest, BenchError};
use crate::perfcmd::{DEFAULT_MAX_REGRESS_PCT, DEFAULT_NOISE_FLOOR_NS, DEFAULT_PERF_REPS};
use crate::sweeps::SWEEP_NAMES;
use crate::Heuristic;

/// The `--engine` vocabulary: one of the two execution engines, or —
/// meaningful to `fuzz` only — the differential `both` mode that runs
/// every check against each engine and diffs their statistics.
/// Sweeps and perf convert to [`crate::sweeps::Engine`] via
/// [`EngineChoice::sweep_engine`]; `both` is a usage error there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// The batched shared-image engine (the default everywhere).
    #[default]
    Batch,
    /// The scalar one-cell-one-simulator engine.
    Scalar,
    /// Fuzz only: run scalar and batch differentially.
    Both,
}

impl EngineChoice {
    /// The choice's CLI spelling.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Batch => "batch",
            EngineChoice::Scalar => "scalar",
            EngineChoice::Both => "both",
        }
    }

    /// The sweep/perf engine this choice names, or `None` for `both`
    /// (which only the differential fuzz loop understands).
    pub fn sweep_engine(self) -> Option<crate::sweeps::Engine> {
        match self {
            EngineChoice::Batch => Some(crate::sweeps::Engine::Batch),
            EngineChoice::Scalar => Some(crate::sweeps::Engine::Scalar),
            EngineChoice::Both => None,
        }
    }
}

/// Every flag any `run` subcommand accepts, with its default. Flags
/// meaningless to a given subcommand are accepted and ignored (so
/// wrapper scripts can pass one flag set everywhere).
#[derive(Debug, Clone)]
pub struct Flags {
    /// `--strategy bb|cf|dd|ts|cost|oracle` (default cf).
    pub strategy: Heuristic,
    /// `--pus N` (default 4).
    pub pus: usize,
    /// `--in-order`.
    pub in_order: bool,
    /// `--insts N`; `None` lets each subcommand pick its default
    /// (100 000 for single runs and traces, the sweep budget for perf).
    pub insts: Option<usize>,
    /// `--seed N` (default [`crate::DEFAULT_SEED`]).
    pub seed: u64,
    /// `--targets N` (default 4).
    pub targets: usize,
    /// `--no-dead-reg` clears this (default true).
    pub dead_reg: bool,
    /// `--json` (single-run machine-readable output).
    pub json: bool,
    /// `--file path.msir` (run a textual-IR program).
    pub file: Option<String>,
    /// `--dump-ir`.
    pub dump_ir: bool,
    /// `--jobs N` (default: available cores).
    pub jobs: usize,
    /// `--out DIR` (default `target/experiments`).
    pub out: PathBuf,
    /// `--reps N`: timed repetitions for `perf` (default
    /// [`DEFAULT_PERF_REPS`]).
    pub reps: usize,
    /// `--baseline FILE`: enable the perf-regression gate against a
    /// previous `BENCH_*.json`; the literal value `best` auto-selects
    /// the best-ever comparable baseline from the `BENCH_*.json` files
    /// in the current directory.
    pub baseline: Option<PathBuf>,
    /// `--max-regress PCT`: per-phase regression threshold (default
    /// [`DEFAULT_MAX_REGRESS_PCT`]).
    pub max_regress: f64,
    /// `--noise-floor-ns N`: baseline phases faster than this are not
    /// gated (default [`DEFAULT_NOISE_FLOOR_NS`]).
    pub noise_floor_ns: u64,
    /// `--bench-out FILE`: where `perf` writes the `BENCH_*.json`
    /// (default `BENCH_<gitshort>.json` in the current directory).
    pub bench_out: Option<PathBuf>,
    /// `--seeds N`: fuzz cases for `fuzz` (default
    /// [`DEFAULT_FUZZ_SEEDS`]).
    pub seeds: u64,
    /// `--max-blocks N`: generated-program size cap for `fuzz`.
    pub max_blocks: usize,
    /// `--inject`: enable the engine's test-only fault injection so the
    /// fuzz loop demonstrably fails (a self-test of the harness).
    pub inject: bool,
    /// `--oracle-max-blocks N`: largest function (reachable blocks) the
    /// `oracle` policy and `gap` subcommand partition exactly (default
    /// [`ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS`]).
    pub oracle_max_blocks: usize,
    /// `--no-gate`: `perf-history` reports cumulative drift without
    /// failing the process (the trajectory gate's escape hatch).
    pub no_gate: bool,
    /// `--quiet`: suppress the live stderr progress line (equivalent to
    /// setting `MS_NO_PROGRESS`; artifacts are identical either way).
    pub quiet: bool,
    /// `--engine batch|scalar|both`: the execution engine for sweeps,
    /// perf and fuzz (`both` is the fuzz loop's differential mode;
    /// artifacts are byte-identical across engines).
    pub engine: EngineChoice,
    /// `--last N`: how many records `runs` lists (default 20).
    pub last: usize,
    /// `--cmd NAME`: filter `runs` to one subcommand's records.
    pub cmd_filter: Option<String>,
    /// `--socket PATH`: where the service daemon listens / where the
    /// client subcommands connect (default `<out>/serve.sock`).
    pub socket: Option<PathBuf>,
    /// `--cache-dir DIR`: the content-addressed cell cache. `serve`
    /// defaults to `<out>/cellcache`; one-shot sweeps run uncached
    /// unless this is given.
    pub cache_dir: Option<PathBuf>,
}

/// Default fuzz cases per `run -- fuzz` sweep.
pub const DEFAULT_FUZZ_SEEDS: u64 = 100;

impl Default for Flags {
    fn default() -> Self {
        Flags {
            strategy: Heuristic::ControlFlow,
            pus: 4,
            in_order: false,
            insts: None,
            seed: crate::DEFAULT_SEED,
            targets: 4,
            dead_reg: true,
            json: false,
            file: None,
            dump_ir: false,
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            out: PathBuf::from("target/experiments"),
            reps: DEFAULT_PERF_REPS,
            baseline: None,
            max_regress: DEFAULT_MAX_REGRESS_PCT,
            noise_floor_ns: DEFAULT_NOISE_FLOOR_NS,
            bench_out: None,
            seeds: DEFAULT_FUZZ_SEEDS,
            max_blocks: ms_conform::FuzzParams::default().max_blocks,
            inject: false,
            oracle_max_blocks: ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS,
            no_gate: false,
            quiet: false,
            engine: EngineChoice::default(),
            last: 20,
            cmd_filter: None,
            socket: None,
            cache_dir: None,
        }
    }
}

// ----------------------------------------------------------- flag table

/// Which `run -- help` section a flag renders under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagGroup {
    /// Accepted by every subcommand.
    Shared,
    /// Ad-hoc single runs (`run -- <benchmark>`).
    SingleRun,
    /// `perf` / `perf-history` and their regression gates.
    Perf,
    /// The differential conformance fuzz loop.
    Fuzz,
    /// The heuristic-vs-oracle gap table.
    Gap,
    /// The run-ledger queries.
    Runs,
    /// The sweep service daemon and its clients.
    Serve,
}

impl FlagGroup {
    fn title(self) -> &'static str {
        match self {
            FlagGroup::Shared => "shared flags",
            FlagGroup::SingleRun => "single-run flags",
            FlagGroup::Perf => "perf / perf-history flags",
            FlagGroup::Fuzz => "fuzz flags",
            FlagGroup::Gap => "gap flags",
            FlagGroup::Runs => "runs flags",
            FlagGroup::Serve => "serve / submit / jobs / shutdown flags",
        }
    }

    const ORDER: [FlagGroup; 7] = [
        FlagGroup::Shared,
        FlagGroup::SingleRun,
        FlagGroup::Perf,
        FlagGroup::Fuzz,
        FlagGroup::Gap,
        FlagGroup::Runs,
        FlagGroup::Serve,
    ];
}

/// How a flag consumes arguments and lands in [`Flags`].
enum Apply {
    /// A bare switch.
    Switch(fn(&mut Flags)),
    /// Consumes the following argument as the flag's value.
    Value(fn(&mut Flags, String) -> Result<(), BenchError>),
}

/// One flag the parser accepts — spelling, value metavar (`None` for a
/// bare switch), help group and line, optional rendered default, and
/// the function that applies it. The parser and `help_text` both read
/// [`FLAGS`], so the vocabulary cannot drift from its documentation.
pub struct FlagSpec {
    /// The flag's spelling, `--` included.
    pub name: &'static str,
    /// Value metavar (`DIR`, `N`, …); `None` for a bare switch.
    pub metavar: Option<&'static str>,
    /// The help section the flag renders under.
    pub group: FlagGroup,
    /// One help line.
    pub help: &'static str,
    /// Rendered as ` (default …)` in the help, computed because some
    /// defaults are runtime values (core count) or library constants.
    pub default: Option<fn() -> String>,
    apply: Apply,
}

fn p<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, BenchError>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| BenchError::Usage(format!("{name}: {e}")))
}

fn at_least_one(name: &str, v: u64) -> Result<(), BenchError> {
    if v == 0 {
        return Err(BenchError::Usage(format!("{name} must be at least 1")));
    }
    Ok(())
}

/// The complete flag vocabulary, in help order within each group.
pub static FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "--out",
        metavar: Some("DIR"),
        group: FlagGroup::Shared,
        help: "artifact root directory",
        default: Some(|| "target/experiments".to_string()),
        apply: Apply::Value(|f, v| {
            f.out = PathBuf::from(v);
            Ok(())
        }),
    },
    FlagSpec {
        name: "--jobs",
        metavar: Some("N"),
        group: FlagGroup::Shared,
        help: "worker threads for sweeps and fuzzing",
        default: Some(|| "available cores".to_string()),
        apply: Apply::Value(|f, v| {
            f.jobs = p("--jobs", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--quiet",
        metavar: None,
        group: FlagGroup::Shared,
        help: "no live progress line (MS_NO_PROGRESS=1 equivalent)",
        default: None,
        apply: Apply::Switch(|f| f.quiet = true),
    },
    FlagSpec {
        name: "--engine",
        metavar: Some("NAME"),
        group: FlagGroup::Shared,
        help: "execution engine: batch|scalar (fuzz also: both, differential)",
        default: Some(|| EngineChoice::default().label().to_string()),
        apply: Apply::Value(|f, v| {
            f.engine = match v.as_str() {
                "batch" => EngineChoice::Batch,
                "scalar" => EngineChoice::Scalar,
                "both" => EngineChoice::Both,
                other => {
                    let hint = closest(other, &["batch", "scalar", "both"])
                        .map(|s| format!(" (did you mean `{s}`?)"))
                        .unwrap_or_default();
                    return Err(BenchError::Usage(format!("unknown engine `{other}`{hint}")));
                }
            };
            Ok(())
        }),
    },
    FlagSpec {
        name: "--strategy",
        metavar: Some("NAME"),
        group: FlagGroup::SingleRun,
        help: "selection policy: bb|cf|dd|ts|cost|oracle (see `run -- policies`)",
        default: Some(|| "cf".to_string()),
        apply: Apply::Value(|f, v| {
            f.strategy = match v.as_str() {
                "bb" => Heuristic::BasicBlock,
                "cf" => Heuristic::ControlFlow,
                "dd" => Heuristic::DataDependence,
                "ts" => Heuristic::TaskSize,
                "cost" => Heuristic::Cost,
                "oracle" => Heuristic::Oracle,
                other => {
                    let names: Vec<&'static str> =
                        Heuristic::extended().iter().map(|h| h.label()).collect();
                    let hint = closest(other, &names)
                        .map(|s| format!(" (did you mean `{s}`?)"))
                        .unwrap_or_default();
                    return Err(BenchError::Usage(format!(
                        "unknown strategy `{other}`{hint}; see `run -- policies`"
                    )));
                }
            };
            Ok(())
        }),
    },
    FlagSpec {
        name: "--pus",
        metavar: Some("N"),
        group: FlagGroup::SingleRun,
        help: "processing units",
        default: Some(|| "4".to_string()),
        apply: Apply::Value(|f, v| {
            f.pus = p("--pus", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--in-order",
        metavar: None,
        group: FlagGroup::SingleRun,
        help: "in-order PU pipelines (default out-of-order)",
        default: None,
        apply: Apply::Switch(|f| f.in_order = true),
    },
    FlagSpec {
        name: "--insts",
        metavar: Some("N"),
        group: FlagGroup::SingleRun,
        help: "dynamic instruction budget",
        default: Some(|| "per-subcommand".to_string()),
        apply: Apply::Value(|f, v| {
            f.insts = Some(p("--insts", &v)?);
            Ok(())
        }),
    },
    FlagSpec {
        name: "--seed",
        metavar: Some("N"),
        group: FlagGroup::SingleRun,
        help: "trace seed (fuzz: base seed)",
        default: Some(|| format!("{:#x}", crate::DEFAULT_SEED)),
        apply: Apply::Value(|f, v| {
            f.seed = p("--seed", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--targets",
        metavar: Some("N"),
        group: FlagGroup::SingleRun,
        help: "heuristic target limit",
        default: Some(|| "4".to_string()),
        apply: Apply::Value(|f, v| {
            f.targets = p("--targets", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--no-dead-reg",
        metavar: None,
        group: FlagGroup::SingleRun,
        help: "naive ring forwarding (disable dead register analysis)",
        default: None,
        apply: Apply::Switch(|f| f.dead_reg = false),
    },
    FlagSpec {
        name: "--json",
        metavar: None,
        group: FlagGroup::SingleRun,
        help: "one-line JSON SimStats instead of the table",
        default: None,
        apply: Apply::Switch(|f| f.json = true),
    },
    FlagSpec {
        name: "--file",
        metavar: Some("PATH"),
        group: FlagGroup::SingleRun,
        help: "run a textual-IR (.msir) program instead of a named benchmark",
        default: None,
        apply: Apply::Value(|f, v| {
            f.file = Some(v);
            Ok(())
        }),
    },
    FlagSpec {
        name: "--dump-ir",
        metavar: None,
        group: FlagGroup::SingleRun,
        help: "print the post-selection IR and exit",
        default: None,
        apply: Apply::Switch(|f| f.dump_ir = true),
    },
    FlagSpec {
        name: "--reps",
        metavar: Some("N"),
        group: FlagGroup::Perf,
        help: "timed repetitions per cell",
        default: Some(|| DEFAULT_PERF_REPS.to_string()),
        apply: Apply::Value(|f, v| {
            f.reps = p("--reps", &v)?;
            at_least_one("--reps", f.reps as u64)
        }),
    },
    FlagSpec {
        name: "--baseline",
        metavar: Some("FILE"),
        group: FlagGroup::Perf,
        help: "gate against a BENCH_*.json (`best` auto-selects the best-ever)",
        default: None,
        apply: Apply::Value(|f, v| {
            f.baseline = Some(PathBuf::from(v));
            Ok(())
        }),
    },
    FlagSpec {
        name: "--max-regress",
        metavar: Some("PCT"),
        group: FlagGroup::Perf,
        help: "per-phase regression threshold",
        default: Some(|| DEFAULT_MAX_REGRESS_PCT.to_string()),
        apply: Apply::Value(|f, v| {
            f.max_regress = p("--max-regress", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--noise-floor-ns",
        metavar: Some("N"),
        group: FlagGroup::Perf,
        help: "baseline phases faster than this are not gated",
        default: Some(|| DEFAULT_NOISE_FLOOR_NS.to_string()),
        apply: Apply::Value(|f, v| {
            f.noise_floor_ns = p("--noise-floor-ns", &v)?;
            Ok(())
        }),
    },
    FlagSpec {
        name: "--bench-out",
        metavar: Some("FILE"),
        group: FlagGroup::Perf,
        help: "where perf writes the BENCH_*.json",
        default: Some(|| "BENCH_<gitshort>.json".to_string()),
        apply: Apply::Value(|f, v| {
            f.bench_out = Some(PathBuf::from(v));
            Ok(())
        }),
    },
    FlagSpec {
        name: "--no-gate",
        metavar: None,
        group: FlagGroup::Perf,
        help: "report regressions/drift without failing the process",
        default: None,
        apply: Apply::Switch(|f| f.no_gate = true),
    },
    FlagSpec {
        name: "--seeds",
        metavar: Some("N"),
        group: FlagGroup::Fuzz,
        help: "fuzz cases per sweep",
        default: Some(|| DEFAULT_FUZZ_SEEDS.to_string()),
        apply: Apply::Value(|f, v| {
            f.seeds = p("--seeds", &v)?;
            at_least_one("--seeds", f.seeds)
        }),
    },
    FlagSpec {
        name: "--max-blocks",
        metavar: Some("N"),
        group: FlagGroup::Fuzz,
        help: "generated-program size cap",
        default: Some(|| ms_conform::FuzzParams::default().max_blocks.to_string()),
        apply: Apply::Value(|f, v| {
            f.max_blocks = p("--max-blocks", &v)?;
            at_least_one("--max-blocks", f.max_blocks as u64)
        }),
    },
    FlagSpec {
        name: "--inject",
        metavar: None,
        group: FlagGroup::Fuzz,
        help: "fault-injection self-test (the loop must fail)",
        default: None,
        apply: Apply::Switch(|f| f.inject = true),
    },
    FlagSpec {
        name: "--oracle-max-blocks",
        metavar: Some("N"),
        group: FlagGroup::Gap,
        help: "largest function the exact oracle partitions",
        default: Some(|| ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS.to_string()),
        apply: Apply::Value(|f, v| {
            f.oracle_max_blocks = p("--oracle-max-blocks", &v)?;
            at_least_one("--oracle-max-blocks", f.oracle_max_blocks as u64)
        }),
    },
    FlagSpec {
        name: "--last",
        metavar: Some("N"),
        group: FlagGroup::Runs,
        help: "how many records to list",
        default: Some(|| "20".to_string()),
        apply: Apply::Value(|f, v| {
            f.last = p("--last", &v)?;
            at_least_one("--last", f.last as u64)
        }),
    },
    FlagSpec {
        name: "--cmd",
        metavar: Some("NAME"),
        group: FlagGroup::Runs,
        help: "filter to one subcommand's records",
        default: None,
        apply: Apply::Value(|f, v| {
            f.cmd_filter = Some(v);
            Ok(())
        }),
    },
    FlagSpec {
        name: "--socket",
        metavar: Some("PATH"),
        group: FlagGroup::Serve,
        help: "daemon listen / client connect socket",
        default: Some(|| "<out>/serve.sock".to_string()),
        apply: Apply::Value(|f, v| {
            f.socket = Some(PathBuf::from(v));
            Ok(())
        }),
    },
    FlagSpec {
        name: "--cache-dir",
        metavar: Some("DIR"),
        group: FlagGroup::Serve,
        help: "content-addressed cell cache (also enables it for one-shot sweeps)",
        default: Some(|| "serve: <out>/cellcache; one-shot: off".to_string()),
        apply: Apply::Value(|f, v| {
            f.cache_dir = Some(PathBuf::from(v));
            Ok(())
        }),
    },
];

// ----------------------------------------------------- subcommand table

/// Which artifact-schema tag a subcommand's help line carries.
#[derive(Debug, Clone, Copy)]
pub enum SchemaRef {
    /// Per-cell sweep metrics (`crate::sweeps::SCHEMA_VERSION`).
    Metrics,
    /// Event traces (`ms_sim::TRACE_SCHEMA_VERSION`).
    Trace,
    /// Perf documents (`crate::perfcmd::PERF_SCHEMA_VERSION`).
    Perf,
    /// Perf-history documents (`crate::historycmd::HISTORY_SCHEMA_VERSION`).
    History,
    /// Run-ledger records (`ms_prof::ledger::LEDGER_SCHEMA_VERSION`).
    Ledger,
    /// Service wire protocol (`crate::api::API_SCHEMA_VERSION`).
    Api,
}

impl SchemaRef {
    fn label(self) -> String {
        match self {
            SchemaRef::Metrics => format!("metrics schema v{}", crate::sweeps::SCHEMA_VERSION),
            SchemaRef::Trace => format!("trace schema v{}", ms_sim::TRACE_SCHEMA_VERSION),
            SchemaRef::Perf => format!("perf schema v{}", crate::perfcmd::PERF_SCHEMA_VERSION),
            SchemaRef::History => {
                format!("history schema v{}", crate::historycmd::HISTORY_SCHEMA_VERSION)
            }
            SchemaRef::Ledger => {
                format!("ledger schema v{}", ms_prof::ledger::LEDGER_SCHEMA_VERSION)
            }
            SchemaRef::Api => format!("api schema v{}", crate::api::API_SCHEMA_VERSION),
        }
    }
}

/// One entry of the subcommand registry: invocation syntax, help lines,
/// and the schema version of what it writes or speaks. `run -- help`
/// and the driver's unknown-name suggestions are generated from
/// [`SUBCOMMANDS`].
pub struct SubcommandSpec {
    /// The first positional word (`<benchmark>` for the fallback).
    pub name: &'static str,
    /// Operand syntax after the name, or `""`.
    pub operands: &'static str,
    /// Help description lines (the first carries the schema tag).
    pub about: &'static [&'static str],
    /// Schema tag rendered after the description, if any.
    pub schema: Option<SchemaRef>,
}

/// Every subcommand, in help order. The eight sweep names are listed
/// as one entry (expanded from [`SWEEP_NAMES`] when rendering).
pub static SUBCOMMANDS: &[SubcommandSpec] = &[
    SubcommandSpec {
        name: "<benchmark>",
        operands: "| all",
        about: &["one simulation; prints SimStats (--json for one-line JSON)"],
        schema: None,
    },
    SubcommandSpec {
        name: "sweeps",
        operands: "",
        about: &["all eight experiment grids, in order"],
        schema: Some(SchemaRef::Metrics),
    },
    SubcommandSpec {
        name: "<sweep>",
        operands: "",
        about: &["one grid -> <out>/<sweep>/*.json; the sweeps are"],
        schema: Some(SchemaRef::Metrics),
    },
    SubcommandSpec {
        name: "trace",
        operands: "<benchmark>",
        about: &[
            "one traced run -> <out>/trace/<bench>-<strategy>.jsonl",
            "+ .chrome.json, plus attribution tables (docs/TRACING.md)",
        ],
        schema: Some(SchemaRef::Trace),
    },
    SubcommandSpec {
        name: "perf",
        operands: "",
        about: &[
            "profile the canonical cells -> BENCH_<gitshort>.json",
            "+ <out>/perf/pipeline.chrome.json (docs/PROFILING.md)",
        ],
        schema: Some(SchemaRef::Perf),
    },
    SubcommandSpec {
        name: "perf-validate",
        operands: "<file>",
        about: &[
            "check a BENCH_*.json or history.json against its schema",
            "(dispatches on `format`), exit non-zero on a mismatch",
        ],
        schema: None,
    },
    SubcommandSpec {
        name: "perf-history",
        operands: "[DIR]",
        about: &[
            "aggregate the BENCH_*.json baselines in DIR (default .) into",
            "a trend table + <out>/perf/history.html + history.json; exit",
            "non-zero on cumulative drift vs best-ever (docs/PERF-HISTORY.md)",
        ],
        schema: Some(SchemaRef::History),
    },
    SubcommandSpec {
        name: "fuzz",
        operands: "",
        about: &[
            "differential conformance fuzzing: random programs x all",
            "heuristics vs the sequential reference; minimal repros ->",
            "<out>/fuzz/seed<seed>-<strategy>.msir (docs/CONFORMANCE.md)",
        ],
        schema: None,
    },
    SubcommandSpec {
        name: "gap",
        operands: "<benchmark> | all",
        about: &[
            "heuristic-vs-optimal table: every policy against the exact",
            "oracle on the benchmark's small functions (docs/POLICIES.md)",
        ],
        schema: None,
    },
    SubcommandSpec {
        name: "policies",
        operands: "",
        about: &["the selection-policy registry, one line per policy"],
        schema: None,
    },
    SubcommandSpec {
        name: "serve",
        operands: "",
        about: &[
            "sweep service daemon on a local socket: queued jobs share one",
            "worker pool and one content-addressed cell cache, results",
            "stream back per cell (docs/SERVICE.md)",
        ],
        schema: Some(SchemaRef::Api),
    },
    SubcommandSpec {
        name: "submit",
        operands: "<sweep>... | all",
        about: &["submit a sweep job to the daemon and stream its results"],
        schema: Some(SchemaRef::Api),
    },
    SubcommandSpec {
        name: "jobs",
        operands: "[id]",
        about: &["the daemon's job table (or one job's status)"],
        schema: None,
    },
    SubcommandSpec {
        name: "shutdown",
        operands: "",
        about: &["drain the daemon's queue and stop it"],
        schema: None,
    },
    SubcommandSpec {
        name: "runs",
        operands: "[show <id>]",
        about: &[
            "list recorded runs, newest first (sweep/perf/perf-history/",
            "trace/fuzz/gap/serve invocations leave JSONL records under",
            "target/experiments/runs/); `show` replays one record",
        ],
        schema: Some(SchemaRef::Ledger),
    },
    SubcommandSpec {
        name: "runs-validate",
        operands: "[FILE]",
        about: &[
            "check run records against the ledger schema, exit non-zero",
            "on any invalid record (docs/OBSERVABILITY.md)",
        ],
        schema: None,
    },
    SubcommandSpec {
        name: "list",
        operands: "",
        about: &["enumerate sweeps (with schema versions) and benchmarks"],
        schema: None,
    },
    SubcommandSpec { name: "help", operands: "", about: &["this text"], schema: None },
];

/// The dispatchable first words, for nearest-match suggestions: every
/// concrete subcommand plus the sweep names (the `<benchmark>` and
/// `<sweep>` placeholder rows resolve through their own registries).
pub fn subcommand_names() -> Vec<&'static str> {
    SUBCOMMANDS.iter().map(|s| s.name).filter(|n| !n.starts_with('<')).chain(["all"]).collect()
}

// ---------------------------------------------------------------- parse

/// Parses an argument stream into positional words (subcommand and its
/// operands, in order) and the shared [`Flags`]. Driven entirely by
/// [`FLAGS`]; unknown flags get a nearest-match suggestion from the
/// same table.
pub fn parse(args: impl Iterator<Item = String>) -> Result<(Vec<String>, Flags), BenchError> {
    let mut flags = Flags::default();
    let mut positionals = Vec::new();
    let mut it = args;
    while let Some(arg) = it.next() {
        if arg == "-h" || arg == "--help" {
            positionals.insert(0, "help".to_string());
            continue;
        }
        if let Some(spec) = FLAGS.iter().find(|s| s.name == arg) {
            match spec.apply {
                Apply::Switch(apply) => apply(&mut flags),
                Apply::Value(apply) => {
                    let v = it.next().ok_or_else(|| {
                        BenchError::Usage(format!("missing value for {}", spec.name))
                    })?;
                    apply(&mut flags, v)?;
                }
            }
        } else if arg.starts_with("--") {
            let names: Vec<&'static str> = FLAGS.iter().map(|s| s.name).collect();
            let hint = closest(&arg, &names)
                .map(|s| format!(" (did you mean `{s}`?)"))
                .unwrap_or_default();
            return Err(BenchError::Usage(format!(
                "unknown argument `{arg}`{hint} (see `run -- help`)"
            )));
        } else {
            positionals.push(arg);
        }
    }
    Ok((positionals, flags))
}

// ----------------------------------------------------------------- help

/// The `run -- help` text, generated from [`SUBCOMMANDS`] and [`FLAGS`]:
/// every subcommand with the schema version of the artifact it writes
/// (or protocol it speaks), then every flag grouped by subcommand
/// family with its default.
pub fn help_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("run — the Multiscalar experiment driver (see EXPERIMENTS.md)\n");
    out.push_str("\nsubcommands\n");
    for spec in SUBCOMMANDS {
        let invocation = if spec.operands.is_empty() {
            spec.name.to_string()
        } else {
            format!("{} {}", spec.name, spec.operands)
        };
        for (i, line) in spec.about.iter().enumerate() {
            let tag = match (i == spec.about.len() - 1, spec.schema) {
                (true, Some(s)) => format!("  [{}]", s.label()),
                _ => String::new(),
            };
            if i == 0 {
                let _ = writeln!(out, "  {invocation:<22} {line}{tag}");
            } else {
                let _ = writeln!(out, "  {:<22} {line}{tag}", "");
            }
        }
        if spec.name == "<sweep>" {
            let _ = writeln!(out, "  {:<22} {}", "", SWEEP_NAMES.join(" | "));
        }
    }
    for group in FlagGroup::ORDER {
        let _ = writeln!(out, "\n{}", group.title());
        for spec in FLAGS.iter().filter(|s| s.group == group) {
            let invocation = match spec.metavar {
                Some(m) => format!("{} {m}", spec.name),
                None => spec.name.to_string(),
            };
            let default = spec.default.map(|d| format!(" (default {})", d())).unwrap_or_default();
            let _ = writeln!(out, "  {invocation:<22} {}{default}", spec.help);
        }
    }
    out.push_str(
        "\nThe perf-regression gate: `run -- perf --baseline BENCH_old.json` (or `--baseline
best` to auto-select the best-ever comparable committed baseline) exits non-zero
if any phase slower than the noise floor regressed by more than --max-regress
percent; `run -- perf-history` additionally gates drift accumulated across the
whole trajectory (docs/PROFILING.md, docs/PERF-HISTORY.md).

The sweep service: `run -- serve` then `run -- submit figure5 table1` from any
number of clients; identical cells are served from the content-addressed cell
cache, artifacts are byte-identical to the one-shot path, and every job leaves
a run-ledger record (docs/SERVICE.md).
",
    );
    out
}

/// The `run -- policies` text: every registered selection policy with
/// its one-line semantics, straight from the core registry (so the list
/// can never drift from the code).
pub fn policies_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("selection policies (--strategy NAME; see docs/POLICIES.md):\n");
    for p in ms_tasksel::policies() {
        let _ = writeln!(out, "  {:<8} {}", p.name(), p.summary());
    }
    let _ = writeln!(
        out,
        "  {:<8} {}",
        "ts", "dd after task-size preprocessing (unroll small loops, include small calls)"
    );
    out
}

/// The `run -- list` text: the typed sweep registry and the workload
/// suite (factored out of the binary so the golden test can pin it).
pub fn list_text() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    out.push_str("sweeps (per-cell metrics artifacts under --out):\n");
    for spec in crate::sweeps::SweepSpec::ALL {
        let _ = writeln!(
            out,
            "  {:<12} schema v{}  {}",
            spec.name(),
            spec.schema_version(),
            spec.describe()
        );
    }
    out.push_str("benchmarks (single runs; also the sweeps' workloads):\n");
    for w in ms_workloads::suite() {
        let _ = writeln!(out, "  {}", w.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(words: &[&str]) -> (Vec<String>, Flags) {
        parse(words.iter().map(|s| s.to_string())).expect("parse")
    }

    #[test]
    fn defaults_and_positional_order() {
        let (pos, flags) = parse_ok(&["trace", "compress", "--pus", "8"]);
        assert_eq!(pos, ["trace", "compress"]);
        assert_eq!(flags.pus, 8);
        assert_eq!(flags.insts, None);
        assert!(flags.dead_reg);
    }

    #[test]
    fn every_subcommand_shares_out_and_jobs() {
        for cmd in ["sweeps", "figure5", "trace", "perf", "compress", "serve", "submit"] {
            let (pos, flags) = parse_ok(&[cmd, "--out", "/tmp/x", "--jobs", "3"]);
            assert_eq!(pos[0], cmd);
            assert_eq!(flags.out, PathBuf::from("/tmp/x"));
            assert_eq!(flags.jobs, 3);
        }
    }

    #[test]
    fn perf_flags_parse() {
        let (_, flags) = parse_ok(&[
            "perf",
            "--reps",
            "3",
            "--baseline",
            "BENCH_old.json",
            "--max-regress",
            "12.5",
            "--noise-floor-ns",
            "1000",
            "--bench-out",
            "/tmp/BENCH_new.json",
        ]);
        assert_eq!(flags.reps, 3);
        assert_eq!(flags.baseline, Some(PathBuf::from("BENCH_old.json")));
        assert_eq!(flags.max_regress, 12.5);
        assert_eq!(flags.noise_floor_ns, 1000);
        assert_eq!(flags.bench_out, Some(PathBuf::from("/tmp/BENCH_new.json")));
    }

    #[test]
    fn rejects_unknown_flags_and_zero_reps() {
        assert!(parse(["--frobnicate".to_string()].into_iter()).is_err());
        assert!(
            parse(["perf".to_string(), "--reps".to_string(), "0".to_string()].into_iter()).is_err()
        );
    }

    #[test]
    fn unknown_flags_get_nearest_match_suggestions() {
        let err = parse(["serve".to_string(), "--sokcet".to_string()].into_iter()).unwrap_err();
        assert!(err.to_string().contains("did you mean `--socket`?"), "{err}");
        let err = parse(["--jbos".to_string()].into_iter()).unwrap_err();
        assert!(err.to_string().contains("did you mean `--jobs`?"), "{err}");
    }

    #[test]
    fn serve_flags_parse() {
        let (pos, flags) =
            parse_ok(&["submit", "figure5", "--socket", "/tmp/s.sock", "--cache-dir", "/tmp/cc"]);
        assert_eq!(pos, ["submit", "figure5"]);
        assert_eq!(flags.socket, Some(PathBuf::from("/tmp/s.sock")));
        assert_eq!(flags.cache_dir, Some(PathBuf::from("/tmp/cc")));
        let (_, flags) = parse_ok(&["serve"]);
        assert_eq!(flags.socket, None);
        assert_eq!(flags.cache_dir, None);
    }

    #[test]
    fn strategy_suggestions_and_new_names() {
        let (_, flags) = parse_ok(&["compress", "--strategy", "oracle"]);
        assert_eq!(flags.strategy, Heuristic::Oracle);
        let (_, flags) = parse_ok(&["compress", "--strategy", "cost", "--oracle-max-blocks", "9"]);
        assert_eq!(flags.strategy, Heuristic::Cost);
        assert_eq!(flags.oracle_max_blocks, 9);
        let err = parse(
            ["compress".to_string(), "--strategy".to_string(), "oracel".to_string()].into_iter(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("did you mean `oracle`?"), "{err}");
    }

    #[test]
    fn policies_text_lists_every_registered_policy() {
        let text = policies_text();
        for name in ms_tasksel::policy_names() {
            assert!(text.contains(name), "policies text must mention `{name}`");
        }
    }

    #[test]
    fn help_lists_every_subcommand_and_schema_version() {
        let text = help_text();
        for cmd in subcommand_names() {
            assert!(text.contains(cmd), "help must mention `{cmd}`");
        }
        for sweep in SWEEP_NAMES {
            assert!(text.contains(sweep), "help must mention sweep `{sweep}`");
        }
        assert!(text.contains(&format!("metrics schema v{}", crate::sweeps::SCHEMA_VERSION)));
        assert!(text.contains(&format!("trace schema v{}", ms_sim::TRACE_SCHEMA_VERSION)));
        assert!(text.contains(&format!("perf schema v{}", crate::perfcmd::PERF_SCHEMA_VERSION)));
        assert!(text
            .contains(&format!("history schema v{}", crate::historycmd::HISTORY_SCHEMA_VERSION)));
        assert!(
            text.contains(&format!("ledger schema v{}", ms_prof::ledger::LEDGER_SCHEMA_VERSION))
        );
        assert!(text.contains(&format!("api schema v{}", crate::api::API_SCHEMA_VERSION)));
    }

    #[test]
    fn help_lists_every_flag_in_its_group() {
        let text = help_text();
        for spec in FLAGS {
            assert!(text.contains(spec.name), "help must mention `{}`", spec.name);
        }
        for group in FlagGroup::ORDER {
            assert!(text.contains(group.title()), "help must have a `{}` section", group.title());
        }
    }

    #[test]
    fn subcommand_names_cover_the_dispatcher() {
        let names = subcommand_names();
        for cmd in ["sweeps", "serve", "submit", "jobs", "shutdown", "runs", "all", "help"] {
            assert!(names.contains(&cmd), "`{cmd}` missing from subcommand_names()");
        }
        assert!(!names.iter().any(|n| n.starts_with('<')), "placeholders are filtered");
    }

    #[test]
    fn runs_flags_parse() {
        let (pos, flags) = parse_ok(&["runs", "--last", "5", "--cmd", "perf", "--quiet"]);
        assert_eq!(pos, ["runs"]);
        assert_eq!(flags.last, 5);
        assert_eq!(flags.cmd_filter.as_deref(), Some("perf"));
        assert!(flags.quiet);
        assert!(
            parse(["runs".to_string(), "--last".to_string(), "0".to_string()].into_iter()).is_err()
        );
    }

    #[test]
    fn history_flags_parse() {
        let (pos, flags) = parse_ok(&["perf-history", "/tmp/baselines", "--no-gate"]);
        assert_eq!(pos, ["perf-history", "/tmp/baselines"]);
        assert!(flags.no_gate);
        let (_, flags) = parse_ok(&["perf-history"]);
        assert!(!flags.no_gate);
    }
}
