//! The `run -- gap <benchmark>` subcommand: the heuristic-vs-optimal
//! table. Every selection policy is run against the exact-partition
//! oracle on one benchmark, and the table reports how far each greedy
//! heuristic's task boundaries land from the provably-minimal ones.
//!
//! The comparison ground is the oracle's own objective — the expected
//! number of task invocations, Σ over task entries of the profiled
//! global entry frequency — restricted to the **oracle-eligible**
//! functions (reachable blocks ≤ the size cutoff), since that is where
//! the oracle is exact rather than a `cf` fallback. Simulated IPC over
//! the whole program is reported alongside as the ground truth the
//! static objective approximates. The `ts` bar is excluded: task-size
//! preprocessing transforms the program, so its boundary objective is
//! not comparable against partitions of the original CFG (see
//! `docs/POLICIES.md`).
//!
//! The pilot for the `cost` policy is a traced `cf` run: its
//! squash/stall attribution tables become the [`CostModel`] steering the
//! re-selection (simulate → attribute → reselect).

use ms_ir::{BlockRef, FuncId};
use ms_sim::{SimConfig, Simulator, TraceAggregator};
use ms_tasksel::{CostModel, PartitionStats, Selection, TaskId};
use ms_trace::TraceGenerator;
use ms_workloads::Workload;

use crate::{run_selection, Heuristic};

/// Cycles charged per squash event on top of the measured restart
/// cycles when converting attribution counts into boundary costs
/// (dispatch/rollback overhead the aggregator does not time directly).
pub const SQUASH_PENALTY_CYCLES: u64 = 8;

/// Everything `run -- gap` needs besides the workload.
#[derive(Debug, Clone)]
pub struct GapOptions {
    /// Hardware successor-target limit `N`.
    pub targets: usize,
    /// Oracle exact-search size cutoff (reachable blocks).
    pub oracle_max_blocks: usize,
    /// Dynamic instructions per simulation.
    pub insts: usize,
    /// Trace seed.
    pub seed: u64,
    /// Machine configuration for the IPC column and the pilot.
    pub config: SimConfig,
}

impl Default for GapOptions {
    fn default() -> Self {
        GapOptions {
            targets: 4,
            oracle_max_blocks: ms_tasksel::DEFAULT_ORACLE_MAX_BLOCKS,
            insts: crate::DEFAULT_TRACE_INSTS,
            seed: crate::DEFAULT_SEED,
            config: SimConfig::four_pu(),
        }
    }
}

/// One policy's row of the gap table.
#[derive(Debug, Clone)]
pub struct GapRow {
    /// Policy-registry name.
    pub policy: &'static str,
    /// Static tasks over the whole program.
    pub tasks: usize,
    /// Frequency-weighted expected dynamic instructions per task.
    pub avg_dyn_size: f64,
    /// Σ entry global frequencies over the oracle-eligible functions.
    pub objective: f64,
    /// Percent above the oracle's objective (`None` when the oracle's
    /// objective is zero).
    pub gap_pct: Option<f64>,
    /// Simulated IPC of the whole program under this policy.
    pub ipc: f64,
}

/// The rendered table plus its rows for programmatic use.
#[derive(Debug, Clone)]
pub struct GapReport {
    /// One row per policy, oracle last.
    pub rows: Vec<GapRow>,
    /// Functions the oracle partitioned exactly.
    pub eligible_funcs: usize,
    /// Functions in the program.
    pub total_funcs: usize,
    /// The rendered text table.
    pub text: String,
}

/// Converts a pilot run's attribution tables into the [`CostModel`]
/// steering the `cost` policy:
///
/// * each squash-attribution row `(func, task) → counts` becomes
///   boundary cost `total squashes × SQUASH_PENALTY_CYCLES +
///   lost cycles` on the pilot task's entry block;
/// * each stall-attribution row `(producer task, consumer task, reg) →
///   cycles` is mapped back to the static def-use arcs between those two
///   pilot tasks carrying that register, accumulating the cycles onto
///   every matching `(producer block, consumer block)` arc.
pub fn cost_model_from_pilot(pilot: &Selection, agg: &TraceAggregator) -> CostModel {
    let mut model = CostModel::new();
    let partition = &pilot.partition;
    for ((f, t), counts) in agg.top_squash_boundaries(usize::MAX) {
        if f >= partition.funcs().len() {
            continue;
        }
        let fid = FuncId::new(f as u32);
        let fp = partition.func(fid);
        if t >= fp.tasks().len() {
            continue;
        }
        let entry = fp.task(TaskId::new(t as u32)).entry();
        let cost = counts.total() * SQUASH_PENALTY_CYCLES + counts.lost_cycles;
        model.add_boundary_cost(fid, entry, cost);
    }
    for (((pf, pt), (cf, ct), reg), cycles) in agg.top_stall_arcs(usize::MAX) {
        // Static def-use arcs are intra-function; cross-function
        // forwarding (through calls/returns) has no single CFG arc to
        // charge, so those rows stay with the boundary costs alone.
        if pf != cf || pf >= partition.funcs().len() {
            continue;
        }
        let fid = FuncId::new(pf as u32);
        let fp = partition.func(fid);
        for (producer, consumer, r) in pilot.context().defuse(fid).block_deps() {
            if r.dense() != reg {
                continue;
            }
            if fp.task_of(producer) == Some(TaskId::new(pt as u32))
                && fp.task_of(consumer) == Some(TaskId::new(ct as u32))
            {
                model.add_arc_cost(fid, producer, consumer, cycles);
            }
        }
    }
    model
}

/// The policies compared by the gap table, oracle last (`ts` excluded —
/// its transformed program is not comparable; see the module docs).
pub fn gap_policies() -> [Heuristic; 5] {
    [
        Heuristic::BasicBlock,
        Heuristic::ControlFlow,
        Heuristic::DataDependence,
        Heuristic::Cost,
        Heuristic::Oracle,
    ]
}

/// Runs the full gap comparison for one workload.
pub fn run_gap(workload: &Workload, opts: &GapOptions) -> GapReport {
    let ctx = ms_analysis::ProgramContext::new(workload.build());

    // Pilot: a traced cf run whose attribution becomes the cost model.
    let pilot = Heuristic::ControlFlow.selector(opts.targets).select(&ctx);
    let trace = TraceGenerator::new(&pilot.program, opts.seed).generate(opts.insts);
    let mut agg = TraceAggregator::new();
    Simulator::new(opts.config.clone(), &pilot.program, &pilot.partition)
        .run_with_sink(&trace, &mut agg);
    let model = cost_model_from_pilot(&pilot, &agg);

    // Oracle eligibility is a property of the shared program, not of any
    // one selection (no policy here transforms the program).
    let eligible: Vec<FuncId> = ctx
        .program()
        .func_ids()
        .filter(|&fid| ctx.order(fid).rpo().len() <= opts.oracle_max_blocks)
        .collect();
    let total_funcs = ctx.program().num_functions();

    let mut rows = Vec::new();
    for h in gap_policies() {
        let mut builder = match h {
            Heuristic::Cost => ms_tasksel::SelectorBuilder::named("cost")
                .expect("registered")
                .cost_model(model.clone()),
            other => ms_tasksel::SelectorBuilder::named(other.label()).expect("registered"),
        };
        builder = builder.max_targets(opts.targets).oracle_max_blocks(opts.oracle_max_blocks);
        let sel = builder.build().select(&ctx);
        let stats = PartitionStats::compute(
            &sel.program,
            &sel.partition,
            sel.context().profile(),
            opts.targets,
        );
        let objective = boundary_objective(&sel, &eligible);
        let ipc = run_selection(&sel, opts.config.clone(), opts.insts, opts.seed).ipc();
        rows.push(GapRow {
            policy: h.label(),
            tasks: stats.num_tasks,
            avg_dyn_size: stats.expected_dynamic_size,
            objective,
            gap_pct: None,
            ipc,
        });
    }
    let oracle_obj = rows.last().expect("oracle row").objective;
    for row in &mut rows {
        if oracle_obj > 0.0 {
            row.gap_pct = Some(100.0 * (row.objective - oracle_obj) / oracle_obj);
        }
    }
    let text = render(workload.name, &rows, eligible.len(), total_funcs, opts);
    GapReport { rows, eligible_funcs: eligible.len(), total_funcs, text }
}

/// Σ over the eligible functions of each task entry's profiled global
/// frequency — the oracle's objective, evaluated on any partition.
fn boundary_objective(sel: &Selection, eligible: &[FuncId]) -> f64 {
    let profile = sel.context().profile();
    let mut sum = 0.0;
    for &fid in eligible {
        for task in sel.partition.func(fid).tasks() {
            sum += profile.global_block_freq(BlockRef::new(fid, task.entry()));
        }
    }
    sum
}

fn render(name: &str, rows: &[GapRow], eligible: usize, total: usize, opts: &GapOptions) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "── gap {name} [N={}, oracle ≤ {} blocks] ──",
        opts.targets, opts.oracle_max_blocks
    );
    let _ = writeln!(
        out,
        "oracle-eligible functions: {eligible}/{total} (objective restricted to these; \
         cf fallback elsewhere)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>9} {:>12} {:>8} {:>6}",
        "policy", "tasks", "avg-dyn", "boundary", "gap", "ipc"
    );
    for r in rows {
        let gap = match r.gap_pct {
            Some(g) => format!("{g:+.1}%"),
            None => "n/a".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>9.2} {:>12.1} {:>8} {:>6.2}",
            r.policy, r.tasks, r.avg_dyn_size, r.objective, gap, r.ipc
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> GapOptions {
        GapOptions { insts: 4_000, ..GapOptions::default() }
    }

    #[test]
    fn oracle_row_is_the_lower_bound() {
        let w = ms_workloads::by_name("compress").unwrap();
        let report = run_gap(&w, &quick_opts());
        assert_eq!(report.rows.len(), 5);
        assert!(report.eligible_funcs >= 1, "compress main must be oracle-eligible");
        let oracle = report.rows.last().unwrap();
        assert_eq!(oracle.policy, "oracle");
        assert_eq!(oracle.gap_pct, Some(0.0));
        for row in &report.rows {
            assert!(
                row.objective >= oracle.objective - 1e-9,
                "{} beats the oracle: {} < {}",
                row.policy,
                row.objective,
                oracle.objective
            );
            if let Some(g) = row.gap_pct {
                assert!(g >= -1e-9);
            }
        }
        assert!(report.text.contains("oracle"));
    }

    #[test]
    fn cost_model_from_pilot_charges_boundaries() {
        let w = ms_workloads::by_name("li").unwrap();
        let ctx = ms_analysis::ProgramContext::new(w.build());
        let pilot = Heuristic::ControlFlow.selector(4).select(&ctx);
        let trace = TraceGenerator::new(&pilot.program, 1).generate(20_000);
        let mut agg = TraceAggregator::new();
        Simulator::new(SimConfig::four_pu(), &pilot.program, &pilot.partition)
            .run_with_sink(&trace, &mut agg);
        let model = cost_model_from_pilot(&pilot, &agg);
        // A 20k-instruction li run always squashes somewhere.
        assert!(!model.is_empty(), "pilot attribution produced an empty model");
    }
}
