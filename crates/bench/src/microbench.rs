//! A minimal, dependency-free micro-benchmark timer.
//!
//! The repository builds with no registry access, so the `benches/`
//! targets use this instead of criterion: warm up, run timed batches,
//! report the median per-iteration time. Invoke with `cargo bench -p
//! ms-bench`. The numbers are for relative comparisons on one machine,
//! not statistically rigorous estimation.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed batches per measurement (the median is reported).
const BATCHES: usize = 15;

/// Target wall-clock per batch.
const BATCH_BUDGET: Duration = Duration::from_millis(120);

/// Times `f`, printing `name`, median per-iteration time, and an
/// optional throughput in elements/second.
///
/// The closure's return value is passed through [`black_box`] so the
/// work is not optimised away.
pub fn bench<T>(name: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
    // Warm-up and batch sizing: find an iteration count that fills the
    // batch budget.
    let start = Instant::now();
    black_box(f());
    let once = start.elapsed().max(Duration::from_nanos(50));
    let iters = (BATCH_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize;

    let mut per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];

    let time = if median >= 1e-3 {
        format!("{:.3} ms", median * 1e3)
    } else if median >= 1e-6 {
        format!("{:.3} us", median * 1e6)
    } else {
        format!("{:.1} ns", median * 1e9)
    };
    match elements {
        Some(n) => {
            let rate = n as f64 / median;
            println!("{name:<40} {time:>12}/iter {:>14.2} Melem/s", rate / 1e6);
        }
        None => println!("{name:<40} {time:>12}/iter"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Smoke test: must terminate quickly on a trivial closure.
        bench("noop", Some(1), || 1 + 1);
    }
}
