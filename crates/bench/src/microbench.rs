//! A minimal, dependency-free micro-benchmark timer, and the shared
//! timing policy behind it.
//!
//! The repository builds with no registry access, so the `benches/`
//! targets use this instead of criterion: warm up, run timed batches,
//! report the median per-iteration time. Invoke with `cargo bench -p
//! ms-bench`. The numbers are for relative comparisons on one machine,
//! not statistically rigorous estimation.
//!
//! The *policy* pieces — one untimed warm-up before measuring, then the
//! [`median`] of repeated samples — are exported so `run -- perf`
//! applies the identical discipline to whole-pipeline phase timings
//! (see [`crate::perfcmd`]): one place decides how this repository
//! turns noisy wall-clock samples into a reported number.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed batches per measurement (the median is reported).
pub const BATCHES: usize = 15;

/// Target wall-clock per batch.
pub const BATCH_BUDGET: Duration = Duration::from_millis(120);

/// The median of a sample set: sorts and takes the middle element
/// (upper middle for even counts). Every reported time in this
/// repository — micro-benchmark iterations and `run -- perf` phase
/// totals alike — is a median, never a mean: medians shrug off the
/// one-off scheduling hiccups that dominate wall-clock noise.
///
/// # Panics
///
/// Panics on an empty sample set.
pub fn median(mut samples: Vec<f64>) -> f64 {
    assert!(!samples.is_empty(), "median of zero samples");
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// Batch sizing from one warm-up observation: the iteration count that
/// fills [`BATCH_BUDGET`] given a single warm-up run took `once`.
pub fn calibrate_iters(once: Duration) -> usize {
    let once = once.max(Duration::from_nanos(50));
    (BATCH_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as usize
}

/// Times `f`, printing `name`, median per-iteration time, and an
/// optional throughput in elements/second.
///
/// The closure's return value is passed through [`black_box`] so the
/// work is not optimised away.
pub fn bench<T>(name: &str, elements: Option<u64>, mut f: impl FnMut() -> T) {
    // Warm-up doubles as batch-size calibration.
    let start = Instant::now();
    black_box(f());
    let iters = calibrate_iters(start.elapsed());

    let per_iter: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    let median = median(per_iter);

    let time = if median >= 1e-3 {
        format!("{:.3} ms", median * 1e3)
    } else if median >= 1e-6 {
        format!("{:.3} us", median * 1e6)
    } else {
        format!("{:.1} ns", median * 1e9)
    };
    match elements {
        Some(n) => {
            let rate = n as f64 / median;
            println!("{name:<40} {time:>12}/iter {:>14.2} Melem/s", rate / 1e6);
        }
        None => println!("{name:<40} {time:>12}/iter"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Smoke test: must terminate quickly on a trivial closure.
        bench("noop", Some(1), || 1 + 1);
    }

    #[test]
    fn median_is_order_insensitive_and_takes_middle() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(vec![2.0, 1.0]), 2.0);
        assert_eq!(median(vec![5.0]), 5.0);
    }

    #[test]
    fn calibrate_clamps_to_sane_iteration_counts() {
        assert_eq!(calibrate_iters(Duration::from_secs(10)), 1);
        assert_eq!(calibrate_iters(Duration::ZERO), 1_000_000);
        let iters = calibrate_iters(Duration::from_millis(12));
        assert_eq!(iters, 10, "120ms budget / 12ms per run");
    }
}
