//! Shared harness for the experiment binaries that regenerate the
//! paper's tables and figures.
//!
//! Every experiment follows the same pipeline: build a synthetic
//! workload, select tasks with one of the paper's heuristics, generate a
//! trace of the (possibly transformed) program, split it into dynamic
//! tasks, and run the cycle-level simulator. [`run_one`] packages that
//! pipeline; [`sweeps`] describes every figure/table/ablation grid as
//! data; the single `run` binary fans the grids out over worker threads
//! ([`harness`]), prints the tables, and writes one schema-versioned
//! JSON metrics artifact per cell ([`json`]) under `target/experiments/`.
//! The `run -- trace` subcommand ([`tracecmd`]) runs one cell with the
//! simulator's event trace on, writing a JSONL event trace plus a Chrome
//! `trace_event` file and printing squash/stall attribution tables.
//! The `run -- perf` subcommand ([`perfcmd`]) runs the canonical cells
//! under the `ms-prof` pipeline profiler, writes the schema-versioned
//! `BENCH_<gitshort>.json` perf trajectory, and gates against a
//! baseline (`--baseline FILE`, or `--baseline best` to auto-select
//! the best-ever committed baseline). The `run -- perf-history`
//! subcommand ([`historycmd`]) aggregates every committed baseline
//! into a trend table, a static HTML dashboard and a machine-readable
//! `history.json`, gating on cumulative drift vs best-ever (see
//! `docs/PERF-HISTORY.md`). The `run -- fuzz` subcommand ([`fuzzcmd`])
//! drives the `ms-conform` differential fuzz loop — random programs
//! through every heuristic under the conformance checker, minimal
//! reproducers written as `.msir` artifacts (see `docs/CONFORMANCE.md`).
//! The `run -- gap` subcommand ([`gapcmd`]) compares every selection
//! policy against the exact-partition oracle on one benchmark, and
//! `run -- policies` lists the policy registry (see
//! `docs/POLICIES.md`). The `run -- serve` subcommand ([`servecmd`])
//! turns the driver into a long-running local-socket daemon: clients
//! (`run -- submit` / `jobs` / `shutdown`) speak the typed,
//! schema-versioned request/event protocol of [`api`], jobs share one
//! worker pool and one content-addressed cell cache ([`cache`]) so
//! repeated and overlapping grids cost near-zero, and every job leaves
//! a run-ledger record (see `docs/SERVICE.md`). Every subcommand
//! shares one flag parser ([`cli`]) and one timing policy
//! ([`microbench`]).
//!
//! This crate is the *reporting* stage of the data flow — everything
//! upstream (IR → selection → trace → simulation) stays in the library
//! crates; everything downstream (tables, JSON artifacts, event traces,
//! golden tests) lives here. See `EXPERIMENTS.md` for the one-command
//! regeneration pipeline, `docs/METRICS.md` for the metric glossary and
//! `docs/TRACING.md` for the event-trace walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod cli;
pub mod error;
pub mod fuzzcmd;
pub mod gapcmd;
pub mod harness;
pub mod historycmd;
pub mod json;
pub mod microbench;
pub mod perfcmd;
pub mod progress;
pub mod runscmd;
pub mod servecmd;
pub mod sweeps;
pub mod tracecmd;

pub use error::BenchError;

use ms_analysis::ProgramContext;
use ms_sim::{SimConfig, SimStats, Simulator};
use ms_tasksel::{SelectorBuilder, Strategy, TaskSelector, TaskSizeParams};
use ms_trace::TraceGenerator;
use ms_workloads::Workload;

/// Default dynamic instruction budget per run (big enough for warmed-up
/// predictors and caches, small enough to sweep 18 × 4 × 4 configs).
pub const DEFAULT_TRACE_INSTS: usize = 100_000;

/// Default trace seed (experiments are exactly reproducible).
pub const DEFAULT_SEED: u64 = 0x5eed;

/// The partitioning strategies of the paper's evaluation, in Figure 5's
/// bar order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Heuristic {
    /// Basic block tasks.
    BasicBlock,
    /// Control flow heuristic (N = 4).
    ControlFlow,
    /// Data dependence heuristic on top of control flow (N = 4).
    DataDependence,
    /// Data dependence + task size heuristic (the paper applies this
    /// fourth bar to 129.compress and 145.fpppp).
    TaskSize,
    /// Cost-model policy: dependence-style growth steered by a measured
    /// squash/stall cost model from a pilot simulation (see
    /// `docs/POLICIES.md`). Without a model it scores from the static
    /// profile.
    Cost,
    /// Exact-partition oracle for small functions, `cf` fallback above
    /// the size cutoff (the `run -- gap` upper-bound baseline).
    Oracle,
}

impl Heuristic {
    /// The paper's four, in Figure 5 bar order.
    pub fn all() -> [Heuristic; 4] {
        [
            Heuristic::BasicBlock,
            Heuristic::ControlFlow,
            Heuristic::DataDependence,
            Heuristic::TaskSize,
        ]
    }

    /// Every heuristic the harness can run: the paper's four plus the
    /// registry's `cost` and `oracle` policies.
    pub fn extended() -> [Heuristic; 6] {
        [
            Heuristic::BasicBlock,
            Heuristic::ControlFlow,
            Heuristic::DataDependence,
            Heuristic::TaskSize,
            Heuristic::Cost,
            Heuristic::Oracle,
        ]
    }

    /// Short label ("bb", "cf", "dd", "ts", "cost", "oracle") — the
    /// policy-registry name.
    pub fn label(&self) -> &'static str {
        match self {
            Heuristic::BasicBlock => "bb",
            Heuristic::ControlFlow => "cf",
            Heuristic::DataDependence => "dd",
            Heuristic::TaskSize => "ts",
            Heuristic::Cost => "cost",
            Heuristic::Oracle => "oracle",
        }
    }

    /// The configured selector (target limit `n`).
    pub fn selector(&self, n: usize) -> TaskSelector {
        match self {
            Heuristic::BasicBlock => SelectorBuilder::new(Strategy::BasicBlock).build(),
            Heuristic::ControlFlow => {
                SelectorBuilder::new(Strategy::ControlFlow).max_targets(n).build()
            }
            Heuristic::DataDependence => {
                SelectorBuilder::new(Strategy::DataDependence).max_targets(n).build()
            }
            Heuristic::TaskSize => SelectorBuilder::new(Strategy::DataDependence)
                .max_targets(n)
                .task_size(TaskSizeParams::default())
                .build(),
            Heuristic::Cost => {
                SelectorBuilder::named("cost").expect("registered").max_targets(n).build()
            }
            Heuristic::Oracle => {
                SelectorBuilder::named("oracle").expect("registered").max_targets(n).build()
            }
        }
    }
}

/// Runs one (workload, heuristic, machine) experiment.
pub fn run_one(
    workload: &Workload,
    heuristic: Heuristic,
    config: SimConfig,
    trace_insts: usize,
    seed: u64,
) -> SimStats {
    let ctx = ProgramContext::new(workload.build());
    let sel = heuristic.selector(4).select(&ctx);
    run_selection(&sel, config, trace_insts, seed)
}

/// Runs one experiment for an already-made selection.
pub fn run_selection(
    sel: &ms_tasksel::Selection,
    config: SimConfig,
    trace_insts: usize,
    seed: u64,
) -> SimStats {
    let trace = TraceGenerator::new(&sel.program, seed).generate(trace_insts);
    Simulator::new(config, &sel.program, &sel.partition).run(&trace)
}

/// Formats a ratio as a signed percentage ("+23%").
pub fn pct_change(base: f64, new: f64) -> String {
    if base <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.0}%", 100.0 * (new - base) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heuristic_labels_are_distinct() {
        let labels: Vec<&str> = Heuristic::all().iter().map(|h| h.label()).collect();
        assert_eq!(labels, vec!["bb", "cf", "dd", "ts"]);
        let ext: Vec<&str> = Heuristic::extended().iter().map(|h| h.label()).collect();
        assert_eq!(ext, vec!["bb", "cf", "dd", "ts", "cost", "oracle"]);
        // Every extended label resolves through the selector path.
        for h in Heuristic::extended() {
            let _ = h.selector(4);
        }
    }

    #[test]
    fn pct_change_formats() {
        assert_eq!(pct_change(2.0, 2.5), "+25%");
        assert_eq!(pct_change(0.0, 2.5), "n/a");
    }

    #[test]
    fn run_one_produces_stats() {
        let w = ms_workloads::by_name("compress").unwrap();
        let s = run_one(&w, Heuristic::ControlFlow, SimConfig::four_pu(), 5_000, 1);
        assert!(s.ipc() > 0.0);
        assert!(s.total_insts >= 5_000);
    }
}
