//! The bench driver's crate-level error type.
//!
//! Everything the `run` binary and the sweep/perf machinery can fail
//! with, as one enum implementing [`std::error::Error`] with `From`
//! conversions — replacing the previous mix of `io::Result` misuse and
//! ad-hoc `String` errors. Unknown-name variants carry a
//! nearest-match suggestion computed by [`closest`].

use std::error::Error;
use std::fmt;
use std::io;

/// Any failure the bench driver can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum BenchError {
    /// A filesystem failure reading or writing an artifact.
    Io(io::Error),
    /// An unknown sweep name, with the closest registered sweep if any
    /// name is plausibly near.
    UnknownSweep {
        /// The name that failed to resolve.
        name: String,
        /// The nearest registered sweep name, if close enough to suggest.
        suggestion: Option<&'static str>,
    },
    /// An unknown benchmark (workload) name, with a suggestion.
    UnknownBenchmark {
        /// The name that failed to resolve.
        name: String,
        /// The nearest suite workload name, if close enough to suggest.
        suggestion: Option<&'static str>,
    },
    /// A malformed command line (unknown flag, missing or bad value).
    Usage(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Io(e) => write!(f, "i/o error: {e}"),
            BenchError::UnknownSweep { name, suggestion } => {
                write!(f, "unknown sweep `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            BenchError::UnknownBenchmark { name, suggestion } => {
                write!(f, "unknown benchmark `{name}`")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean `{s}`?)")?;
                }
                Ok(())
            }
            BenchError::Usage(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for BenchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BenchError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for BenchError {
    fn from(e: io::Error) -> Self {
        BenchError::Io(e)
    }
}

/// The candidate closest to `name` by edit distance, if within a
/// suggestion-worthy bound (≤ 3 edits, and fewer than the name's own
/// length — so wild guesses don't produce absurd suggestions).
pub fn closest(name: &str, candidates: &[&'static str]) -> Option<&'static str> {
    let best = candidates.iter().map(|c| (edit_distance(name, c), *c)).min()?;
    (best.0 <= 3 && best.0 < name.len().max(1)).then_some(best.1)
}

/// Levenshtein distance, small-string implementation (both operands are
/// short command-line words).
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("figure5", "figure5"), 0);
        assert_eq!(edit_distance("figure4", "figure5"), 1);
        assert_eq!(edit_distance("tresholds", "thresholds"), 1);
    }

    #[test]
    fn closest_suggests_near_names_only() {
        let names = &["figure5", "table1", "thresholds"];
        assert_eq!(closest("tresholds", names), Some("thresholds"));
        assert_eq!(closest("figure", names), Some("figure5"));
        assert_eq!(closest("zzzzzzzzzzzz", names), None);
    }

    #[test]
    fn display_includes_suggestions() {
        let e = BenchError::UnknownSweep { name: "figur5".into(), suggestion: Some("figure5") };
        let s = e.to_string();
        assert!(s.contains("figur5") && s.contains("did you mean") && s.contains("figure5"));
        let e = BenchError::UnknownSweep { name: "x".into(), suggestion: None };
        assert!(!e.to_string().contains("did you mean"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: BenchError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
        assert!(e.source().is_some());
    }
}
