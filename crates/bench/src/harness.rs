//! A deterministic std-only thread pool for embarrassingly parallel
//! experiment grids.
//!
//! Every sweep in this crate is a grid of independent (workload ×
//! heuristic × machine) cells, each fully determined by its own inputs
//! (the per-cell seed included). [`run_parallel`] fans the cells out
//! over `jobs` worker threads and returns the results **in input
//! order**, so the output is bit-identical to a serial run — parallelism
//! changes wall-clock, never results. No work stealing, no external
//! crates: an atomic next-index counter hands out cells, an mpsc channel
//! carries `(index, result)` pairs back.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs `f` over every item, `jobs` cells at a time, and returns the
/// results in item order.
///
/// `f` receives the item and its index. With `jobs <= 1` the items run
/// serially on the caller's thread (no pool, same order, same results).
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn run_parallel<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, usize) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, item)| f(item, i)).collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let items = &items;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                // A send can only fail if the receiver was dropped,
                // which cannot happen while this scope is alive.
                let _ = tx.send((i, f(&items[i], i)));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
        }
    });
    slots.into_iter().map(|r| r.expect("every cell index was claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = run_parallel(8, items.clone(), |&x, i| {
            assert_eq!(x, i as u64);
            // Uneven work so completion order differs from input order.
            std::thread::sleep(std::time::Duration::from_micros((x % 7) * 50));
            x * x
        });
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = run_parallel(1, items.clone(), |&x, _| x.wrapping_mul(0x9e3779b97f4a7c15));
        let par = run_parallel(4, items, |&x, _| x.wrapping_mul(0x9e3779b97f4a7c15));
        assert_eq!(serial, par);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_parallel(4, empty, |&x, _| x).is_empty());
        assert_eq!(run_parallel(4, vec![7u32], |&x, _| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_parallel(64, vec![1u32, 2, 3], |&x, _| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
