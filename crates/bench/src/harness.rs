//! A deterministic std-only thread pool for embarrassingly parallel
//! experiment grids.
//!
//! Every sweep in this crate is a grid of independent (workload ×
//! heuristic × machine) cells, each fully determined by its own inputs
//! (the per-cell seed included). [`run_parallel`] fans the cells out
//! over `jobs` worker threads and returns the results **in input
//! order**, so the output is bit-identical to a serial run — parallelism
//! changes wall-clock, never results. No work stealing, no external
//! crates: an atomic next-index counter hands out cells, an mpsc channel
//! carries `(index, result)` pairs back.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use ms_prof::ledger::ProgressSink;

/// The disabled sink plain [`run_parallel`] callers share: `const`
/// constructed, so it costs nothing at startup and every method is a
/// single not-enabled branch.
static SILENT_SINK: ProgressSink = ProgressSink::disabled();

/// Runs `f` over every item, `jobs` cells at a time, and returns the
/// results in item order.
///
/// `f` receives the item and its index. With `jobs <= 1` the items run
/// serially on the caller's thread (no pool, same order, same results).
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn run_parallel<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, usize) -> R + Sync,
{
    run_parallel_observed(jobs, items, f, &SILENT_SINK, &|| {})
}

/// [`run_parallel`] with run-ledger observability: per-worker busy
/// tallies flow into `sink`, and `tick` runs on the **caller's** thread
/// each time a result lands (the live progress line's heartbeat).
///
/// Worker busy time covers every work item the closure runs — for the
/// two-stage sweep scheduler that includes context warm-up items, so
/// the tallies measure worker *occupancy*, not just cell simulation.
/// With `sink` disabled this is exactly [`run_parallel`]: no clock
/// reads, no atomics beyond the scheduler's own.
///
/// # Panics
///
/// Panics if a worker panics (the panic is propagated).
pub fn run_parallel_observed<T, R, F>(
    jobs: usize,
    items: Vec<T>,
    f: F,
    sink: &ProgressSink,
    tick: &dyn Fn(),
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T, usize) -> R + Sync,
{
    if jobs <= 1 || items.len() <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = if sink.is_enabled() {
                    let t0 = Instant::now();
                    let r = f(item, i);
                    sink.worker_busy(0, t0.elapsed().as_nanos() as u64, 1);
                    r
                } else {
                    f(item, i)
                };
                tick();
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let workers = jobs.min(items.len());
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let items = &items;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = if sink.is_enabled() {
                    let t0 = Instant::now();
                    let r = f(&items[i], i);
                    sink.worker_busy(w, t0.elapsed().as_nanos() as u64, 1);
                    r
                } else {
                    f(&items[i], i)
                };
                // A send can only fail if the receiver was dropped,
                // which cannot happen while this scope is alive.
                let _ = tx.send((i, r));
            });
        }
        drop(tx);
        for (i, r) in rx {
            slots[i] = Some(r);
            tick();
        }
    });
    slots.into_iter().map(|r| r.expect("every cell index was claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = run_parallel(8, items.clone(), |&x, i| {
            assert_eq!(x, i as u64);
            // Uneven work so completion order differs from input order.
            std::thread::sleep(std::time::Duration::from_micros((x % 7) * 50));
            x * x
        });
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..40).collect();
        let serial = run_parallel(1, items.clone(), |&x, _| x.wrapping_mul(0x9e3779b97f4a7c15));
        let par = run_parallel(4, items, |&x, _| x.wrapping_mul(0x9e3779b97f4a7c15));
        assert_eq!(serial, par);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(run_parallel(4, empty, |&x, _| x).is_empty());
        assert_eq!(run_parallel(4, vec![7u32], |&x, _| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_items_is_fine() {
        let out = run_parallel(64, vec![1u32, 2, 3], |&x, _| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn observed_run_ticks_once_per_item_and_tallies_workers() {
        use std::cell::Cell;

        let sink = ProgressSink::new(4);
        let ticks = Cell::new(0u32);
        let items: Vec<u64> = (0..23).collect();
        let out =
            run_parallel_observed(4, items, |&x, _| x + 1, &sink, &|| ticks.set(ticks.get() + 1));
        assert_eq!(out.len(), 23);
        assert_eq!(ticks.get(), 23, "tick fires on the caller thread once per result");
        let snap = sink.snapshot();
        let items_done: u64 = snap.workers.iter().map(|&(_, n)| n).sum();
        assert_eq!(items_done, 23, "every item is charged to exactly one worker");

        // Serial path charges worker 0 and still ticks.
        let sink = ProgressSink::new(1);
        let ticks = Cell::new(0u32);
        let out = run_parallel_observed(1, vec![1u64, 2, 3], |&x, _| x, &sink, &|| {
            ticks.set(ticks.get() + 1)
        });
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(ticks.get(), 3);
        assert_eq!(sink.snapshot().workers[0].1, 3);
    }
}
