//! The live sweep progress line: a TTY-only stderr renderer fed by the
//! scheduler's [`ProgressSink`].
//!
//! The line is pure presentation — artifacts, ledger events and stdout
//! are byte-identical whether it renders or not. It turns itself off
//! (to a zero-cost no-op) when stderr is not a terminal (piped/CI),
//! when `--quiet` is passed, or when `MS_NO_PROGRESS` is set in the
//! environment. Anatomy (see `docs/OBSERVABILITY.md`):
//!
//! ```text
//! forwarding 7/12 cells · 118.3/s · eta 0s · warm 5 · [▆▇▅█]
//! ```
//!
//! left to right: sweep label, finished/queued cells, finish rate,
//! remaining-time estimate, context-cache warm hits, and one occupancy
//! glyph per worker (busy wall-time ÷ elapsed wall-time, ` ` → `█`).

use std::cell::Cell;
use std::io::{IsTerminal, Write};
use std::time::{Duration, Instant};

use ms_prof::ledger::{ProgressSink, ProgressSnapshot};

/// Minimum interval between repaints: fast enough to look live, slow
/// enough that rendering never shows up in a profile.
const REPAINT: Duration = Duration::from_millis(100);

/// Occupancy glyphs from idle to saturated, one per worker slot.
const OCCUPANCY: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// A throttled `\r`-rewriting stderr progress line. Construct one per
/// sweep via [`ProgressLine::stderr`]; call [`tick`](ProgressLine::tick)
/// from the scheduler's heartbeat and [`finish`](ProgressLine::finish)
/// before printing the sweep's report.
#[derive(Debug)]
pub struct ProgressLine {
    enabled: bool,
    label: String,
    start: Instant,
    last_paint: Cell<Option<Instant>>,
    painted: Cell<bool>,
}

impl ProgressLine {
    /// A progress line for `label`, enabled only when stderr is a
    /// terminal, `quiet` is false and `MS_NO_PROGRESS` is unset.
    pub fn stderr(label: &str, quiet: bool) -> ProgressLine {
        let enabled = !quiet
            && std::env::var_os("MS_NO_PROGRESS").is_none()
            && std::io::stderr().is_terminal();
        ProgressLine {
            enabled,
            label: label.to_string(),
            start: Instant::now(),
            last_paint: Cell::new(None),
            painted: Cell::new(false),
        }
    }

    /// Repaints the line from a fresh snapshot of `sink`, at most once
    /// per repaint interval (100 ms). A disabled line returns
    /// immediately.
    pub fn tick(&self, sink: &ProgressSink) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some(last) = self.last_paint.get() {
            if now.duration_since(last) < REPAINT {
                return;
            }
        }
        self.last_paint.set(Some(now));
        self.painted.set(true);
        let line = render(&self.label, &sink.snapshot(), now.duration_since(self.start));
        let mut err = std::io::stderr().lock();
        // Pad then carriage-return so a shrinking line leaves no tail.
        let _ = write!(err, "\r{line:<78}\r");
        let _ = err.flush();
    }

    /// Clears the line (if anything was painted) so the report that
    /// follows starts on a clean row.
    pub fn finish(&self) {
        if self.enabled && self.painted.get() {
            let mut err = std::io::stderr().lock();
            let _ = write!(err, "\r{:<78}\r", "");
            let _ = err.flush();
        }
    }
}

fn render(label: &str, snap: &ProgressSnapshot, elapsed: Duration) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let rate = snap.finished as f64 / secs;
    let remaining = snap.queued.saturating_sub(snap.finished);
    let eta = if snap.finished == 0 || rate <= 0.0 {
        "?".to_string()
    } else {
        fmt_secs(remaining as f64 / rate)
    };
    let elapsed_ns = (secs * 1e9).max(1.0);
    let bar: String = snap
        .workers
        .iter()
        .map(|&(busy_ns, _)| {
            let occ = (busy_ns as f64 / elapsed_ns).clamp(0.0, 1.0);
            OCCUPANCY[(occ * (OCCUPANCY.len() - 1) as f64).round() as usize]
        })
        .collect();
    let cache = if snap.cache_hits + snap.cache_misses > 0 {
        format!(" · cache {}/{}", snap.cache_hits, snap.cache_hits + snap.cache_misses)
    } else {
        String::new()
    };
    format!(
        "{label} {}/{} cells · {rate:.1}/s · eta {eta} · warm {}{cache} · [{bar}]",
        snap.finished, snap.queued, snap.warm_hits
    )
}

fn fmt_secs(s: f64) -> String {
    if s >= 90.0 {
        format!("{:.0}m{:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else {
        format!("{s:.0}s")
    }
}

/// The observability hooks the sweep scheduler threads through its
/// stages: the counter sink, the caller-thread heartbeat that drives
/// the progress line, plus the cell-cache handle and the per-cell
/// streaming callback the service daemon wires in.
pub struct SweepObserver<'a> {
    /// Destination for queued/started/finished/warm-hit counters and
    /// per-worker busy tallies.
    pub sink: &'a ProgressSink,
    /// Invoked on the coordinating thread each time a work item
    /// completes; the progress line repaints here.
    pub on_tick: &'a dyn Fn(),
    /// Content-addressed cell cache; `None` runs every cell (the
    /// one-shot default without `--cache-dir`).
    pub cache: Option<&'a crate::cache::CellCache>,
    /// Invoked on the coordinating thread for each finished cell, in
    /// grid order, right after its artifact is written — the daemon
    /// streams these to the submitting client.
    pub on_cell: &'a dyn Fn(&crate::api::CellResult),
}

impl SweepObserver<'_> {
    /// The no-op observer: a disabled sink, an empty heartbeat, no
    /// cache, no cell stream. What library callers that don't care
    /// about telemetry pass.
    pub fn silent() -> SweepObserver<'static> {
        static SILENT: ProgressSink = ProgressSink::disabled();
        SweepObserver { sink: &SILENT, on_tick: &|| {}, cache: None, on_cell: &|_| {} }
    }
}

impl std::fmt::Debug for SweepObserver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepObserver").field("sink", self.sink).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_counts_rate_eta_and_occupancy() {
        let snap = ProgressSnapshot {
            queued: 12,
            started: 8,
            finished: 6,
            warm_hits: 5,
            workers: vec![(2_000_000_000, 3), (1_000_000_000, 2), (0, 0), (2_000_000_000, 1)],
            ..Default::default()
        };
        let line = render("forwarding", &snap, Duration::from_secs(2));
        assert!(line.starts_with("forwarding 6/12 cells · 3.0/s · eta 2s · warm 5 · ["));
        assert!(line.contains("[█▄ █]"), "occupancy bar renders per-worker glyphs: {line}");

        // With cell-cache traffic the line gains a hits/lookups field.
        let snap = ProgressSnapshot { cache_hits: 9, cache_misses: 3, ..snap };
        let line = render("forwarding", &snap, Duration::from_secs(2));
        assert!(line.contains("warm 5 · cache 9/12 · ["), "{line}");
    }

    #[test]
    fn eta_is_unknown_before_the_first_finish() {
        let snap = ProgressSnapshot { queued: 4, ..Default::default() };
        let line = render("x", &snap, Duration::from_millis(10));
        assert!(line.contains("eta ?"), "{line}");
    }

    #[test]
    fn long_etas_use_minutes() {
        assert_eq!(fmt_secs(125.0), "2m05s");
        assert_eq!(fmt_secs(45.0), "45s");
    }

    #[test]
    fn silent_observer_is_disabled() {
        let obs = SweepObserver::silent();
        assert!(!obs.sink.is_enabled());
        (obs.on_tick)();
    }
}
