//! `run -- runs`: querying the run ledger.
//!
//! Every ledgered invocation (`sweep`, `perf`, `perf-history`, `trace`,
//! `fuzz`, `gap`) leaves one `ms_prof::ledger` JSONL record under
//! [`runs_dir`]. This module renders that history: `runs [--last N]
//! [--cmd X]` lists records newest-first as a table, `runs show <id>`
//! replays one record, and `runs-validate` checks every record against
//! the schema (mirroring `perf-validate`). See `docs/OBSERVABILITY.md`
//! for the schema and triage recipes.

use std::path::{Path, PathBuf};

use ms_prof::ledger::{self, RunRecord};

use crate::perfcmd::fmt_ns;

/// Where run records live: `MS_RUNS_DIR` if set (tests isolate
/// themselves with it), else `target/experiments/runs` relative to the
/// working directory — deliberately independent of `--out`, so one
/// ledger spans every invocation.
pub fn runs_dir() -> PathBuf {
    match std::env::var_os("MS_RUNS_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from("target/experiments/runs"),
    }
}

/// Record files under `dir`, newest first (the id's UTC-stamp prefix
/// makes the filename sort chronological).
pub fn record_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect(),
        Err(_) => Vec::new(),
    };
    files.sort();
    files.reverse();
    files
}

fn outcome_label(rec: &RunRecord) -> String {
    rec.outcome.clone().unwrap_or_else(|| "open".to_string())
}

fn duration_label(rec: &RunRecord) -> String {
    rec.duration_ns.map_or("-".to_string(), |ns| fmt_ns(ns))
}

/// One table row per record under `dir`, newest first, capped at
/// `last` rows, optionally filtered to one subcommand. Unparseable
/// files surface as `invalid` rows rather than disappearing.
pub fn list_runs(dir: &Path, last: usize, cmd_filter: Option<&str>) -> String {
    use std::fmt::Write as _;
    let mut text = String::new();
    let files = record_files(dir);
    if files.is_empty() {
        writeln!(text, "no run records under {} (run a sweep or perf first)", dir.display())
            .unwrap();
        return text;
    }
    writeln!(
        text,
        "{:<42} {:<10} {:<14} {:<8} {:>9} {:>6} {:>5} {:>9}",
        "id", "date", "cmd", "outcome", "duration", "events", "cells", "artifacts"
    )
    .unwrap();
    let mut shown = 0usize;
    let mut skipped = 0usize;
    for path in &files {
        if shown >= last {
            skipped += 1;
            continue;
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("?").to_string();
        let parsed = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| ledger::parse_record(&t));
        match parsed {
            Ok(rec) => {
                if cmd_filter.is_some_and(|c| c != rec.cmd) {
                    continue;
                }
                writeln!(
                    text,
                    "{:<42} {:<10} {:<14} {:<8} {:>9} {:>6} {:>5} {:>9}",
                    rec.id,
                    &ledger::utc_stamp(rec.ts)[..8],
                    rec.cmd,
                    outcome_label(&rec),
                    duration_label(&rec),
                    rec.events,
                    rec.cells,
                    rec.artifacts.len()
                )
                .unwrap();
            }
            Err(_) => {
                if cmd_filter.is_some() {
                    continue;
                }
                writeln!(
                    text,
                    "{:<42} {:<10} {:<14} {:<8} {:>9} {:>6} {:>5} {:>9}",
                    stem, "-", "-", "invalid", "-", "-", "-", "-"
                )
                .unwrap();
            }
        }
        shown += 1;
    }
    if skipped > 0 {
        writeln!(text, "({skipped} older record{} not shown)", if skipped == 1 { "" } else { "s" })
            .unwrap();
    }
    text
}

/// Replays one record by id: header, every event line, footer summary.
pub fn show_run(dir: &Path, id: &str) -> Result<String, String> {
    use std::fmt::Write as _;
    let path = dir.join(format!("{id}.jsonl"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("no run record `{id}` under {} ({e})", dir.display()))?;
    let rec = ledger::parse_record(&text).map_err(|e| format!("{}: {e}", path.display()))?;

    let mut out = String::new();
    writeln!(out, "run {}", rec.id).unwrap();
    writeln!(out, "  started   {} UTC (unix {})", ledger::utc_stamp(rec.ts), rec.ts).unwrap();
    writeln!(out, "  git       {}", rec.git).unwrap();
    writeln!(out, "  argv      run -- {}", rec.argv.join(" ")).unwrap();
    if !rec.params.is_empty() {
        let params: Vec<String> = rec.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
        writeln!(out, "  params    {}", params.join(" ")).unwrap();
    }
    writeln!(
        out,
        "  outcome   {} (exit {}) in {}",
        outcome_label(&rec),
        rec.exit_code.map_or("-".to_string(), |c| c.to_string()),
        duration_label(&rec)
    )
    .unwrap();
    writeln!(out, "  events    {} ({} cells)", rec.events, rec.cells).unwrap();
    if rec.events > 0 {
        for line in text.lines().filter(|l| l.contains("\"record\":\"event\"")) {
            writeln!(out, "    {line}").unwrap();
        }
    }
    if !rec.artifacts.is_empty() {
        writeln!(out, "  artifacts {}", rec.artifacts.len()).unwrap();
        for a in &rec.artifacts {
            writeln!(out, "    {a}").unwrap();
        }
    }
    Ok(out)
}

/// Validates `file` (when given) or every record under `dir` against
/// the ledger schema, mirroring `perf-validate`. Returns the rendered
/// report and the process exit code (non-zero on any invalid record).
pub fn validate_runs(dir: &Path, file: Option<&str>) -> (String, i32) {
    use std::fmt::Write as _;
    let files: Vec<PathBuf> = match file {
        Some(f) => vec![PathBuf::from(f)],
        None => {
            let mut fs = record_files(dir);
            fs.reverse(); // oldest first reads naturally in a report
            fs
        }
    };
    let mut text = String::new();
    if files.is_empty() {
        writeln!(text, "no run records under {} — nothing to validate", dir.display()).unwrap();
        return (text, 0);
    }
    let mut bad = 0usize;
    for path in &files {
        let verdict = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| ledger::validate_record(&t));
        match verdict {
            Ok(rec) => writeln!(
                text,
                "{}: valid {} record (schema v{}, {} events, {} cells, {} artifacts)",
                path.display(),
                ledger::LEDGER_FORMAT,
                ledger::LEDGER_SCHEMA_VERSION,
                rec.events,
                rec.cells,
                rec.artifacts.len()
            )
            .unwrap(),
            Err(e) => {
                bad += 1;
                writeln!(text, "{}: INVALID — {e}", path.display()).unwrap();
            }
        }
    }
    if bad > 0 {
        writeln!(text, "{bad} of {} record(s) failed validation", files.len()).unwrap();
    }
    (text, if bad > 0 { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ms-runscmd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_record(dir: &Path, ts: u64, cmd: &str, footer: bool) -> String {
        let meta = ledger::RunMeta {
            cmd: cmd.to_string(),
            argv: vec![cmd.to_string()],
            git: "abc1234".to_string(),
            params: vec![("jobs".to_string(), "2".to_string())],
        };
        let mut l = ledger::RunLedger::open_at(dir, &meta, ts).unwrap();
        let id = l.id().to_string();
        if footer {
            l.event("cell", vec![("cell", ms_prof::jsonv::Value::Str("x".to_string()))]);
            l.artifact("target/x.json");
            l.close("ok", 0, &ledger::ProgressSnapshot::default()).unwrap();
        }
        id
    }

    #[test]
    fn listing_is_newest_first_filtered_and_capped() {
        let dir = tmp("list");
        write_record(&dir, 1_754_006_400, "forwarding", true);
        write_record(&dir, 1_754_092_800, "perf", true);
        write_record(&dir, 1_754_179_200, "forwarding", false);

        let all = list_runs(&dir, 20, None);
        let rows: Vec<&str> = all.lines().skip(1).collect();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].contains("open"), "newest (interrupted) first: {}", rows[0]);
        assert!(rows[1].contains("perf"));
        assert!(rows[2].contains("forwarding"));

        let only_fwd = list_runs(&dir, 20, Some("forwarding"));
        // The interrupted record still parses (header carries cmd).
        assert_eq!(only_fwd.lines().skip(1).count(), 2);

        let capped = list_runs(&dir, 1, None);
        assert!(capped.contains("(2 older records not shown)"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn show_replays_one_record_and_missing_ids_error() {
        let dir = tmp("show");
        let id = write_record(&dir, 1_754_006_400, "perf", true);
        let out = show_run(&dir, &id).unwrap();
        assert!(out.contains(&format!("run {id}")));
        assert!(out.contains("argv      run -- perf"));
        assert!(out.contains("outcome   ok (exit 0)"));
        assert!(out.contains("\"event\":\"cell\""));
        assert!(out.contains("target/x.json"));
        assert!(show_run(&dir, "nope").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_flags_interrupted_records() {
        let dir = tmp("validate");
        write_record(&dir, 1_754_006_400, "gap", true);
        write_record(&dir, 1_754_092_800, "trace", false);
        let (text, code) = validate_runs(&dir, None);
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("valid ms-run-ledger record"));
        assert!(text.contains("INVALID"));
        assert!(text.contains("no footer"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
