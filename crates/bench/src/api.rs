//! The typed sweep-execution API: one request/result vocabulary shared
//! by the one-shot CLI path and the service daemon's wire protocol.
//!
//! Historically the driver's JSON shapes grew ad hoc — per-cell
//! artifacts in [`crate::sweeps`], run records in `ms_prof::ledger`,
//! and any future wire protocol would have invented a third dialect.
//! This module is the single source of truth for *requests* and
//! *results in flight*:
//!
//! * [`SweepRequest`] — what to run (sweep names + worker count). The
//!   one-shot `run -- <sweep>` path and the daemon's `submit` verb both
//!   construct one and resolve it through [`SweepRequest::resolve`].
//! * [`CellResult`] — one finished cell: its artifact JSON (exactly the
//!   bytes the one-shot path writes to disk) plus whether the
//!   content-addressed cache served it.
//! * [`JobStatus`] / [`JobState`] — a submitted job's lifecycle.
//! * [`Request`] / [`JobEvent`] — the newline-delimited JSON wire
//!   protocol: one [`Request`] line client→server, a stream of
//!   [`JobEvent`] lines back (see `docs/SERVICE.md`).
//!
//! Every wire line carries `"api_version"`; decoding rejects versions
//! this build does not speak. Encoding is hand-rolled on
//! [`crate::json::JsonObj`] (insertion-ordered, byte-stable), decoding
//! on `ms_prof::jsonv` — the repository's in-tree JSON, no serde.

use ms_prof::jsonv::{self, Value};

use crate::error::BenchError;
use crate::json::{escape, JsonObj};
use crate::sweeps::SweepSpec;

/// Version of the request/event wire schema (bump on any field
/// change; documented in `docs/SERVICE.md`).
pub const API_SCHEMA_VERSION: u32 = 1;

/// What to run: a validated-on-resolve list of sweep names and an
/// optional worker-count override. Both execution paths — `run --
/// <sweep>` in-process and `run -- submit` over the socket — build one
/// of these and hand it to the same executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRequest {
    /// Sweep names, in execution order (see
    /// [`crate::sweeps::SWEEP_NAMES`]).
    pub sweeps: Vec<String>,
    /// Worker threads; `None` lets the executor pick its default.
    pub jobs: Option<usize>,
}

impl SweepRequest {
    /// Resolves every requested name to its [`SweepSpec`], with
    /// nearest-match suggestions on unknown names.
    pub fn resolve(&self) -> Result<Vec<SweepSpec>, BenchError> {
        if self.sweeps.is_empty() {
            return Err(BenchError::Usage("a sweep request needs at least one sweep".into()));
        }
        self.sweeps.iter().map(|name| SweepSpec::parse(name)).collect()
    }

    fn fields(&self, o: &mut JsonObj) {
        o.raw("sweeps", &str_array(&self.sweeps));
        if let Some(j) = self.jobs {
            o.num_u64("jobs", j as u64);
        }
    }

    fn from_value(v: &Value) -> Result<SweepRequest, String> {
        let sweeps = v
            .get("sweeps")
            .and_then(Value::as_arr)
            .ok_or("submit: missing `sweeps` array")?
            .iter()
            .map(|s| {
                s.as_str().map(str::to_string).ok_or("submit: non-string sweep name".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let jobs = v.get("jobs").map(|j| {
            j.as_u64().map(|j| j as usize).ok_or("submit: non-integer `jobs`".to_string())
        });
        Ok(SweepRequest { sweeps, jobs: jobs.transpose()? })
    }
}

/// One client→server line of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Enqueue a job; the server streams that job's [`JobEvent`]s back
    /// on the same connection until [`JobEvent::Done`].
    Submit(SweepRequest),
    /// List every job the daemon knows, answered by [`JobEvent::Jobs`].
    Jobs,
    /// One job's current [`JobStatus`], answered by [`JobEvent::Jobs`]
    /// with a single entry.
    Status {
        /// The job id ([`JobStatus::id`]).
        job: String,
    },
    /// Liveness probe, answered by [`JobEvent::Pong`].
    Ping,
    /// Drain the queue and exit, answered by [`JobEvent::Ok`].
    Shutdown,
}

impl Request {
    /// The request as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.num_u64("api_version", API_SCHEMA_VERSION as u64);
        match self {
            Request::Submit(req) => {
                o.str("type", "submit");
                req.fields(&mut o);
            }
            Request::Jobs => {
                o.str("type", "jobs");
            }
            Request::Status { job } => {
                o.str("type", "status").str("job", job);
            }
            Request::Ping => {
                o.str("type", "ping");
            }
            Request::Shutdown => {
                o.str("type", "shutdown");
            }
        }
        o.finish()
    }

    /// Parses one request line, checking the api version.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let v = jsonv::parse(line)?;
        check_version(&v)?;
        match v.get("type").and_then(Value::as_str) {
            Some("submit") => Ok(Request::Submit(SweepRequest::from_value(&v)?)),
            Some("jobs") => Ok(Request::Jobs),
            Some("status") => Ok(Request::Status {
                job: v
                    .get("job")
                    .and_then(Value::as_str)
                    .ok_or("status: missing `job`")?
                    .to_string(),
            }),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("missing `type`".to_string()),
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the dispatcher.
    Queued,
    /// Executing on the worker pool.
    Running,
    /// Every sweep finished; artifacts and run record written.
    Done,
    /// A sweep failed; the run record closed with a failure outcome.
    Failed,
}

impl JobState {
    /// The wire label (`queued` / `running` / `done` / `failed`).
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn parse(s: &str) -> Result<JobState, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            other => Err(format!("unknown job state `{other}`")),
        }
    }
}

/// A submitted job's lifecycle snapshot, as the `jobs` / `status`
/// verbs report it and as [`JobEvent::Done`] finalises it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobStatus {
    /// Server-assigned id (`job-1`, `job-2`, …).
    pub id: String,
    /// Lifecycle state.
    pub state: JobState,
    /// The requested sweep names.
    pub sweeps: Vec<String>,
    /// Cells finished so far (cache hits included).
    pub cells_done: u64,
    /// Cells served whole from the content-addressed cell cache.
    pub cache_hits: u64,
    /// Cells that missed the cache and were simulated.
    pub cache_misses: u64,
    /// Directory the job's artifacts land under.
    pub artifacts_root: String,
}

impl JobStatus {
    /// The status as a JSON object (no `api_version`; events embed it).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.str("id", &self.id)
            .str("state", self.state.label())
            .raw("sweeps", &str_array(&self.sweeps))
            .num_u64("cells_done", self.cells_done)
            .num_u64("cache_hits", self.cache_hits)
            .num_u64("cache_misses", self.cache_misses)
            .str("artifacts_root", &self.artifacts_root);
        o.finish()
    }

    fn from_value(v: &Value) -> Result<JobStatus, String> {
        let field = |k: &str| v.get(k).and_then(Value::as_u64).ok_or(format!("job: missing `{k}`"));
        Ok(JobStatus {
            id: v.get("id").and_then(Value::as_str).ok_or("job: missing `id`")?.to_string(),
            state: JobState::parse(
                v.get("state").and_then(Value::as_str).ok_or("job: missing `state`")?,
            )?,
            sweeps: v
                .get("sweeps")
                .and_then(Value::as_arr)
                .ok_or("job: missing `sweeps`")?
                .iter()
                .map(|s| s.as_str().map(str::to_string).ok_or("job: non-string sweep".to_string()))
                .collect::<Result<Vec<_>, _>>()?,
            cells_done: field("cells_done")?,
            cache_hits: field("cache_hits")?,
            cache_misses: field("cache_misses")?,
            artifacts_root: v
                .get("artifacts_root")
                .and_then(Value::as_str)
                .ok_or("job: missing `artifacts_root`")?
                .to_string(),
        })
    }
}

/// One finished cell, as both execution paths see it: the artifact is
/// *exactly* the schema-versioned JSON the one-shot CLI writes to
/// `<out>/<sweep>/<cell>.json` (single line, no trailing newline), so
/// a wire consumer and a disk consumer parse one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// The sweep the cell belongs to.
    pub sweep: String,
    /// The cell id within the sweep.
    pub cell: String,
    /// Whether the content-addressed cache served the cell (no
    /// simulation ran).
    pub cached: bool,
    /// The cell's artifact JSON ([`crate::sweeps::cell_json`] output).
    pub artifact: String,
}

/// One server→client line of the wire protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// The job is on the queue.
    Accepted {
        /// The assigned job id.
        job: String,
        /// Jobs ahead of it (0 = next to run).
        queue_depth: u64,
    },
    /// One sweep of the job began executing.
    SweepStarted {
        /// The owning job id.
        job: String,
        /// The sweep name.
        sweep: String,
    },
    /// One cell finished (streamed in grid order per sweep).
    Cell {
        /// The owning job id.
        job: String,
        /// The finished cell.
        result: CellResult,
    },
    /// One sweep of the job finished.
    SweepDone {
        /// The owning job id.
        job: String,
        /// The sweep name.
        sweep: String,
        /// Cells the sweep ran.
        cells: u64,
        /// Cells served from the cell cache.
        cache_hits: u64,
        /// Cells simulated.
        cache_misses: u64,
    },
    /// The job finished (terminal event of a `submit` stream).
    Done {
        /// The final status (`Done` or `Failed`).
        status: JobStatus,
    },
    /// Answer to `jobs` / `status`.
    Jobs {
        /// Every requested job, submission order.
        jobs: Vec<JobStatus>,
    },
    /// A request-level failure (bad request, unknown job, …). Terminal
    /// for the connection's current request.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Acknowledgement (currently only for `shutdown`).
    Ok,
}

impl JobEvent {
    /// The event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.num_u64("api_version", API_SCHEMA_VERSION as u64);
        match self {
            JobEvent::Accepted { job, queue_depth } => {
                o.str("event", "accepted").str("job", job).num_u64("queue_depth", *queue_depth);
            }
            JobEvent::SweepStarted { job, sweep } => {
                o.str("event", "sweep_started").str("job", job).str("sweep", sweep);
            }
            JobEvent::Cell { job, result } => {
                o.str("event", "cell")
                    .str("job", job)
                    .str("sweep", &result.sweep)
                    .str("cell", &result.cell)
                    .bool("cached", result.cached)
                    .raw("artifact", &result.artifact);
            }
            JobEvent::SweepDone { job, sweep, cells, cache_hits, cache_misses } => {
                o.str("event", "sweep_done")
                    .str("job", job)
                    .str("sweep", sweep)
                    .num_u64("cells", *cells)
                    .num_u64("cache_hits", *cache_hits)
                    .num_u64("cache_misses", *cache_misses);
            }
            JobEvent::Done { status } => {
                o.str("event", "done").raw("job", &status.to_json());
            }
            JobEvent::Jobs { jobs } => {
                let list: Vec<String> = jobs.iter().map(JobStatus::to_json).collect();
                o.str("event", "jobs").raw("jobs", &format!("[{}]", list.join(",")));
            }
            JobEvent::Error { message } => {
                o.str("event", "error").str("message", message);
            }
            JobEvent::Pong => {
                o.str("event", "pong");
            }
            JobEvent::Ok => {
                o.str("event", "ok");
            }
        }
        o.finish()
    }

    /// Parses one event line, checking the api version.
    pub fn from_json(line: &str) -> Result<JobEvent, String> {
        let v = jsonv::parse(line)?;
        check_version(&v)?;
        let job = || -> Result<String, String> {
            Ok(v.get("job").and_then(Value::as_str).ok_or("event: missing `job`")?.to_string())
        };
        match v.get("event").and_then(Value::as_str) {
            Some("accepted") => Ok(JobEvent::Accepted {
                job: job()?,
                queue_depth: v
                    .get("queue_depth")
                    .and_then(Value::as_u64)
                    .ok_or("accepted: missing `queue_depth`")?,
            }),
            Some("sweep_started") => {
                Ok(JobEvent::SweepStarted { job: job()?, sweep: req_str(&v, "sweep")? })
            }
            Some("cell") => Ok(JobEvent::Cell {
                job: job()?,
                result: CellResult {
                    sweep: req_str(&v, "sweep")?,
                    cell: req_str(&v, "cell")?,
                    cached: matches!(v.get("cached"), Some(Value::Bool(true))),
                    artifact: v.get("artifact").ok_or("cell: missing `artifact`")?.to_json(),
                },
            }),
            Some("sweep_done") => Ok(JobEvent::SweepDone {
                job: job()?,
                sweep: req_str(&v, "sweep")?,
                cells: req_u64(&v, "cells")?,
                cache_hits: req_u64(&v, "cache_hits")?,
                cache_misses: req_u64(&v, "cache_misses")?,
            }),
            Some("done") => Ok(JobEvent::Done {
                status: JobStatus::from_value(v.get("job").ok_or("done: missing `job`")?)?,
            }),
            Some("jobs") => Ok(JobEvent::Jobs {
                jobs: v
                    .get("jobs")
                    .and_then(Value::as_arr)
                    .ok_or("jobs: missing `jobs` array")?
                    .iter()
                    .map(JobStatus::from_value)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            Some("error") => Ok(JobEvent::Error { message: req_str(&v, "message")? }),
            Some("pong") => Ok(JobEvent::Pong),
            Some("ok") => Ok(JobEvent::Ok),
            Some(other) => Err(format!("unknown event `{other}`")),
            None => Err("missing `event`".to_string()),
        }
    }
}

fn check_version(v: &Value) -> Result<(), String> {
    match v.get("api_version").and_then(Value::as_u64) {
        Some(ver) if ver == API_SCHEMA_VERSION as u64 => Ok(()),
        Some(ver) => Err(format!("api_version {ver} (this build speaks v{API_SCHEMA_VERSION})")),
        None => Err("missing `api_version`".to_string()),
    }
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key).and_then(Value::as_str).map(str::to_string).ok_or(format!("missing `{key}`"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or(format!("missing `{key}`"))
}

fn str_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| format!("\"{}\"", escape(s))).collect();
    format!("[{}]", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> JobStatus {
        JobStatus {
            id: "job-3".to_string(),
            state: JobState::Done,
            sweeps: vec!["forwarding".to_string(), "targets".to_string()],
            cells_done: 32,
            cache_hits: 12,
            cache_misses: 20,
            artifacts_root: "target/experiments/serve/job-3".to_string(),
        }
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(SweepRequest { sweeps: vec!["forwarding".to_string()], jobs: Some(4) }),
            Request::Submit(SweepRequest { sweeps: vec!["pus".to_string()], jobs: None }),
            Request::Jobs,
            Request::Status { job: "job-1".to_string() },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_json();
            assert!(line.contains(&format!("\"api_version\":{API_SCHEMA_VERSION}")), "{line}");
            assert_eq!(Request::from_json(&line).expect("round trip"), req);
        }
    }

    #[test]
    fn events_round_trip() {
        let events = [
            JobEvent::Accepted { job: "job-1".to_string(), queue_depth: 2 },
            JobEvent::SweepStarted { job: "job-1".to_string(), sweep: "forwarding".to_string() },
            JobEvent::Cell {
                job: "job-1".to_string(),
                result: CellResult {
                    sweep: "forwarding".to_string(),
                    cell: "go-dead".to_string(),
                    cached: true,
                    artifact: "{\"schema_version\":1,\"cell\":\"go-dead\"}".to_string(),
                },
            },
            JobEvent::SweepDone {
                job: "job-1".to_string(),
                sweep: "forwarding".to_string(),
                cells: 12,
                cache_hits: 12,
                cache_misses: 0,
            },
            JobEvent::Done { status: status() },
            JobEvent::Jobs { jobs: vec![status()] },
            JobEvent::Error { message: "unknown sweep `figur5`".to_string() },
            JobEvent::Pong,
            JobEvent::Ok,
        ];
        for ev in events {
            let line = ev.to_json();
            assert_eq!(JobEvent::from_json(&line).expect("round trip"), ev, "{line}");
        }
    }

    #[test]
    fn version_mismatches_are_rejected() {
        let line = Request::Ping
            .to_json()
            .replace(&format!("\"api_version\":{API_SCHEMA_VERSION}"), "\"api_version\":99");
        assert!(Request::from_json(&line).unwrap_err().contains("api_version 99"));
        assert!(JobEvent::from_json("{\"event\":\"pong\"}")
            .unwrap_err()
            .contains("missing `api_version`"));
    }

    #[test]
    fn requests_resolve_through_the_sweep_registry() {
        let req =
            SweepRequest { sweeps: vec!["forwarding".to_string(), "pus".to_string()], jobs: None };
        let specs = req.resolve().expect("known names resolve");
        assert_eq!(specs, vec![SweepSpec::Forwarding, SweepSpec::Pus]);

        let bad = SweepRequest { sweeps: vec!["figur5".to_string()], jobs: None };
        let err = bad.resolve().unwrap_err().to_string();
        assert!(err.contains("figure5"), "nearest-match suggestion survives the api: {err}");
        assert!(SweepRequest { sweeps: vec![], jobs: None }.resolve().is_err());
    }
}
