//! The content-addressed cell cache: memoized sweep-cell results keyed
//! by what actually determines them.
//!
//! A sweep cell is a pure function of (pre-selection program, selection
//! parameters, machine configuration, trace budget and seed) evaluated
//! by a specific version of the timing model. The cache keys on exactly
//! that closure — [`cell_key`] hashes the program's canonical IR text,
//! the `Debug` rendering of the cell's [`ms_sim::SimConfig`] (every field, so a
//! new config knob can never alias two distinct machines), the
//! remaining [`CellJob`] parameters, `ms_sim::ENGINE_VERSION` and the
//! artifact schema version — so a repeated or overlapping grid serves
//! finished cells without re-simulating, and *any* change to program,
//! configuration or model moves to a fresh key instead of serving stale
//! results.
//!
//! Entries store the **raw** [`CellOutput`] fields (every `SimStats`
//! and `PartitionStats` counter), not rendered artifact bytes: the
//! artifact JSON embeds the sweep and cell names, which are *not* part
//! of the cell's identity. Re-rendering a decoded output through
//! [`crate::sweeps::cell_json`] reproduces the one-shot artifact
//! byte-for-byte (floats use shortest-round-trip formatting both ways),
//! which the service tests pin.
//!
//! Lookups count into per-cache atomics (surfaced by the daemon's job
//! telemetry), the scheduler's `ProgressSink` (run ledger + progress
//! line) and the `ms-prof` counters `sweep.cache.hit` /
//! `sweep.cache.miss` (visible under `run -- perf`). A corrupt,
//! truncated or schema-incompatible entry is treated as a miss and
//! recomputed, never trusted.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use ms_prof::jsonv;
use ms_sim::{CycleBreakdown, SimStats, TaskSizeHist};
use ms_tasksel::PartitionStats;

use crate::json::JsonObj;
use crate::sweeps::{CellJob, CellOutput, SCHEMA_VERSION};

/// Version of the on-disk cache entry format. Bumping it orphans every
/// existing entry (they decode as misses), which is always safe.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64-bit over `bytes` from an explicit offset basis (two bases
/// give the 128 key bits).
fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The standard FNV-1a 64 offset basis.
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// Hash of a program's canonical IR text (see
/// [`CellJob::program_text`]) — the "program" component of a cell key.
pub fn program_hash(text: &str) -> u64 {
    fnv1a(text.as_bytes(), FNV_BASIS)
}

/// The content-addressed key of one cell: 32 hex characters derived
/// from everything the cell's output depends on. `engine_version` is a
/// parameter (rather than read from `ms_sim` directly) so tests can pin
/// that a model-version bump moves every key.
pub fn cell_key(job: &CellJob, program_hash: u64, engine_version: u32) -> String {
    use std::fmt::Write as _;
    let mut m = String::with_capacity(256);
    let _ = write!(m, "engine={engine_version};schema={SCHEMA_VERSION};");
    let _ = write!(m, "program={program_hash:016x};bench={};", job.bench);
    let _ = write!(m, "if_convert_arms={:?};", job.if_convert_arms);
    let _ = write!(m, "config={:?};", job.sim_config());
    let _ = write!(m, "strategy={};targets={};", job.heuristic.label(), job.targets);
    let _ = write!(m, "ts_thresh={:?};insts={};seed={};", job.ts_thresh, job.insts, job.seed);
    let lo = fnv1a(m.as_bytes(), FNV_BASIS);
    // Second basis: the standard one perturbed, for independent bits.
    let hi = fnv1a(m.as_bytes(), FNV_BASIS ^ 0x9e37_79b9_7f4a_7c15);
    format!("{hi:016x}{lo:016x}")
}

/// A directory of memoized cell results, shared by every job of a
/// daemon (and usable by the one-shot path via `--cache-dir`). Safe to
/// share across threads: lookups and stores touch independent files
/// named by content key, so concurrent writers of the same key write
/// identical bytes.
#[derive(Debug)]
pub struct CellCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Program-text hashes memoized per distinct pre-selection program,
    /// so a grid of N cells over one program builds it once, not N
    /// times, just for keying.
    program_hashes: Mutex<HashMap<(&'static str, Option<usize>), u64>>,
}

impl CellCache {
    /// Opens (creating if needed) the cache rooted at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> io::Result<CellCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CellCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            program_hashes: Mutex::new(HashMap::new()),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cell's content key under the *current* engine version,
    /// memoizing the program hash per distinct pre-selection program.
    pub fn key_for(&self, job: &CellJob) -> String {
        let ph = {
            let mut memo = self.program_hashes.lock().unwrap();
            *memo
                .entry((job.bench, job.if_convert_arms))
                .or_insert_with(|| program_hash(&job.program_text()))
        };
        cell_key(job, ph, ms_sim::ENGINE_VERSION)
    }

    /// Looks `key` up, counting a hit or miss. Undecodable entries are
    /// misses.
    pub fn lookup(&self, key: &str) -> Option<CellOutput> {
        let out =
            fs::read_to_string(self.entry_path(key)).ok().and_then(|text| decode_entry(&text, key));
        match &out {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ms_prof::counter_add("sweep.cache.hit", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                ms_prof::counter_add("sweep.cache.miss", 1);
            }
        }
        out
    }

    /// Stores `out` under `key`. Concurrent stores of the same key are
    /// benign (identical bytes); the write is atomic-enough via a
    /// same-directory rename so readers never see a torn entry.
    pub fn store(&self, key: &str, out: &CellOutput) -> io::Result<()> {
        let tmp = self.dir.join(format!(".{key}.tmp"));
        fs::write(&tmp, encode_entry(key, out) + "\n")?;
        fs::rename(&tmp, self.entry_path(key))
    }

    /// Hits counted over this cache handle's lifetime.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Misses counted over this cache handle's lifetime.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }
}

/// Serialises a cell output as one cache entry line (raw fields only;
/// see the module docs for why artifacts are not cached verbatim).
fn encode_entry(key: &str, out: &CellOutput) -> String {
    let s = &out.sim;
    let b = &s.breakdown;
    let mut sim = JsonObj::new();
    sim.num_u64("num_pus", s.num_pus as u64)
        .num_u64("total_cycles", s.total_cycles)
        .num_u64("total_insts", s.total_insts)
        .num_u64("num_dyn_tasks", s.num_dyn_tasks as u64)
        .num_u64("task_preds", s.task_preds)
        .num_u64("task_pred_hits", s.task_pred_hits)
        .num_u64("br_preds", s.br_preds)
        .num_u64("br_pred_hits", s.br_pred_hits)
        .num_u64("ct_insts", s.ct_insts)
        .num_u64("violations", s.violations)
        .num_u64("squashed_insts", s.squashed_insts)
        .num_u64("ctrl_squashes", s.ctrl_squashes)
        .num_u64("fwd_stall_cycles", s.fwd_stall_cycles)
        .num_u64("pu_idle_cycles", s.pu_idle_cycles)
        .raw("task_size_hist", &s.task_size_hist.to_json())
        .num_u64("arb_overflows", s.arb_overflows);
    let mut bd = JsonObj::new();
    bd.num_u64("start_overhead", b.start_overhead)
        .num_u64("useful", b.useful)
        .num_u64("intra_dep", b.intra_dep)
        .num_u64("inter_comm", b.inter_comm)
        .num_u64("memory", b.memory)
        .num_u64("frontend", b.frontend)
        .num_u64("resource", b.resource)
        .num_u64("load_imbalance", b.load_imbalance)
        .num_u64("end_overhead", b.end_overhead)
        .num_u64("ctrl_misspec", b.ctrl_misspec)
        .num_u64("mem_misspec", b.mem_misspec);
    sim.raw("breakdown", &bd.finish())
        .num_f64("window_span_measured", s.window_span_measured)
        .num_u64("reg_forwards", s.reg_forwards)
        .num_u64("l1d_hits", s.l1d.0)
        .num_u64("l1d_misses", s.l1d.1)
        .num_u64("l1i_hits", s.l1i.0)
        .num_u64("l1i_misses", s.l1i.1);

    let p = &out.partition;
    let mut part = JsonObj::new();
    part.num_u64("num_tasks", p.num_tasks as u64)
        .num_f64("avg_static_size", p.avg_static_size)
        .num_f64("expected_dynamic_size", p.expected_dynamic_size)
        .raw("targets_hist", &usize_array(&p.targets_hist))
        .num_u64("over_limit", p.over_limit as u64)
        .num_u64("deps_exposed", p.deps_exposed as u64)
        .num_u64("deps_included", p.deps_included as u64)
        .raw("size_hist", &usize_array(&p.size_hist));

    let mut o = JsonObj::new();
    o.num_u64("cache_schema_version", CACHE_SCHEMA_VERSION as u64)
        .str("key", key)
        .raw("sim", &sim.finish())
        .raw("partition", &part.finish());
    o.finish()
}

/// Decodes a cache entry, validating schema version and key (a file
/// renamed or copied to the wrong name must not serve). Any defect →
/// `None` (miss).
fn decode_entry(text: &str, key: &str) -> Option<CellOutput> {
    let v = jsonv::parse(text.trim_end()).ok()?;
    if v.get("cache_schema_version")?.as_u64()? != CACHE_SCHEMA_VERSION as u64 {
        return None;
    }
    if v.get("key")?.as_str()? != key {
        return None;
    }
    let sim = v.get("sim")?;
    let u = |k: &str| sim.get(k)?.as_u64();
    let bdv = sim.get("breakdown")?;
    let bu = |k: &str| bdv.get(k)?.as_u64();
    let hist = sim.get("task_size_hist")?.as_arr()?;
    let mut task_size_hist = TaskSizeHist::default();
    if hist.len() != task_size_hist.buckets.len() {
        return None;
    }
    for (slot, v) in task_size_hist.buckets.iter_mut().zip(hist) {
        *slot = v.as_u64()?;
    }
    let stats = SimStats {
        num_pus: u("num_pus")? as usize,
        total_cycles: u("total_cycles")?,
        total_insts: u("total_insts")?,
        num_dyn_tasks: u("num_dyn_tasks")? as usize,
        task_preds: u("task_preds")?,
        task_pred_hits: u("task_pred_hits")?,
        br_preds: u("br_preds")?,
        br_pred_hits: u("br_pred_hits")?,
        ct_insts: u("ct_insts")?,
        violations: u("violations")?,
        squashed_insts: u("squashed_insts")?,
        ctrl_squashes: u("ctrl_squashes")?,
        fwd_stall_cycles: u("fwd_stall_cycles")?,
        pu_idle_cycles: u("pu_idle_cycles")?,
        task_size_hist,
        arb_overflows: u("arb_overflows")?,
        breakdown: CycleBreakdown {
            start_overhead: bu("start_overhead")?,
            useful: bu("useful")?,
            intra_dep: bu("intra_dep")?,
            inter_comm: bu("inter_comm")?,
            memory: bu("memory")?,
            frontend: bu("frontend")?,
            resource: bu("resource")?,
            load_imbalance: bu("load_imbalance")?,
            end_overhead: bu("end_overhead")?,
            ctrl_misspec: bu("ctrl_misspec")?,
            mem_misspec: bu("mem_misspec")?,
        },
        window_span_measured: sim.get("window_span_measured")?.as_f64()?,
        reg_forwards: u("reg_forwards")?,
        l1d: (u("l1d_hits")?, u("l1d_misses")?),
        l1i: (u("l1i_hits")?, u("l1i_misses")?),
    };
    let part = v.get("partition")?;
    let pu = |k: &str| part.get(k)?.as_u64();
    let arr = |k: &str| -> Option<Vec<usize>> {
        part.get(k)?.as_arr()?.iter().map(|v| Some(v.as_u64()? as usize)).collect()
    };
    let partition = PartitionStats {
        num_tasks: pu("num_tasks")? as usize,
        avg_static_size: part.get("avg_static_size")?.as_f64()?,
        expected_dynamic_size: part.get("expected_dynamic_size")?.as_f64()?,
        targets_hist: arr("targets_hist")?,
        over_limit: pu("over_limit")? as usize,
        deps_exposed: pu("deps_exposed")? as usize,
        deps_included: pu("deps_included")? as usize,
        size_hist: arr("size_hist")?,
    };
    Some(CellOutput { sim: stats, partition })
}

fn usize_array(items: &[usize]) -> String {
    let cells: Vec<String> = items.iter().map(|v| v.to_string()).collect();
    format!("[{}]", cells.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Heuristic;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ms-cellcache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn keys_are_stable_across_runs() {
        let job = CellJob::new("compress", Heuristic::ControlFlow);
        let ph = program_hash(&job.program_text());
        assert_eq!(cell_key(&job, ph, 1), cell_key(&job.clone(), ph, 1));
        assert_eq!(cell_key(&job, ph, 1).len(), 32);
        assert!(cell_key(&job, ph, 1).chars().all(|c| c.is_ascii_hexdigit()));
        // The memoizing path agrees with the direct computation.
        let cache = CellCache::at(tmpdir("stable")).unwrap();
        assert_eq!(cache.key_for(&job), cell_key(&job, ph, ms_sim::ENGINE_VERSION));
        assert_eq!(cache.key_for(&job), cache.key_for(&job.clone()));
    }

    #[test]
    fn keys_diverge_when_program_config_or_engine_changes() {
        let base = CellJob::new("compress", Heuristic::ControlFlow);
        let ph = program_hash(&base.program_text());
        let key = cell_key(&base, ph, 1);

        // Program changes: a different workload, or the same workload
        // through the if-conversion pass, hashes to different text.
        let other = CellJob::new("go", Heuristic::ControlFlow);
        let other_ph = program_hash(&other.program_text());
        assert_ne!(ph, other_ph);
        assert_ne!(key, cell_key(&other, other_ph, 1));
        let ifc = CellJob { if_convert_arms: Some(4), ..base.clone() };
        assert_ne!(ph, program_hash(&ifc.program_text()));

        // SimConfig changes — every machine knob moves the key.
        for variant in [
            CellJob { pus: 8, ..base.clone() },
            CellJob { in_order: true, ..base.clone() },
            CellJob { dead_reg: false, ..base.clone() },
            CellJob { ring_bandwidth: Some(1), ..base.clone() },
            CellJob { arb_entries_per_pu: Some(8), ..base.clone() },
            CellJob { sync_table_entries: Some(0), ..base.clone() },
        ] {
            assert_ne!(key, cell_key(&variant, ph, 1), "{variant:?}");
        }
        // Selection and trace parameters move it too.
        for variant in [
            CellJob { targets: 8, ..base.clone() },
            CellJob { ts_thresh: Some(30.0), ..base.clone() },
            CellJob { insts: 1_000, ..base.clone() },
            CellJob { seed: 7, ..base.clone() },
            CellJob::new("compress", Heuristic::DataDependence),
        ] {
            assert_ne!(key, cell_key(&variant, ph, 1), "{variant:?}");
        }

        // An engine-version bump orphans every key.
        assert_ne!(key, cell_key(&base, ph, 2));
    }

    #[test]
    fn entries_round_trip_exactly() {
        let job = CellJob { insts: 2_000, ..CellJob::new("compress", Heuristic::ControlFlow) };
        let out = job.run();
        let cache = CellCache::at(tmpdir("roundtrip")).unwrap();
        let key = cache.key_for(&job);

        assert!(cache.lookup(&key).is_none(), "cold cache misses");
        cache.store(&key, &out).unwrap();
        let back = cache.lookup(&key).expect("stored entry decodes");
        // Field-exact equality: with `cell_json` being a pure function
        // of (names, job, output), this is what makes served artifacts
        // byte-identical to one-shot ones.
        assert_eq!(back, out);
        assert_eq!(
            crate::sweeps::cell_json("s", "c", &job, &back),
            crate::sweeps::cell_json("s", "c", &job, &out),
        );
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn corrupt_or_mismatched_entries_are_misses() {
        let job = CellJob { insts: 2_000, ..CellJob::new("li", Heuristic::BasicBlock) };
        let out = job.run();
        let cache = CellCache::at(tmpdir("corrupt")).unwrap();
        let key = cache.key_for(&job);

        // Truncated JSON.
        fs::write(cache.dir().join(format!("{key}.json")), "{\"cache_schema").unwrap();
        assert!(cache.lookup(&key).is_none());
        // Wrong embedded key (file copied to the wrong name).
        fs::write(
            cache.dir().join(format!("{key}.json")),
            encode_entry("0000000000000000ffffffffffffffff", &out),
        )
        .unwrap();
        assert!(cache.lookup(&key).is_none());
        // Wrong cache schema version.
        let stale = encode_entry(&key, &out)
            .replace("\"cache_schema_version\":1", "\"cache_schema_version\":99");
        fs::write(cache.dir().join(format!("{key}.json")), stale).unwrap();
        assert!(cache.lookup(&key).is_none());
    }
}
