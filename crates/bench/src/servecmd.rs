//! The sweep service daemon (`run -- serve`) and its clients
//! (`run -- submit` / `jobs` / `shutdown`).
//!
//! The daemon turns the one-shot sweep driver into a long-running
//! local service: it listens on a Unix domain socket, accepts typed
//! [`crate::api`] requests as newline-delimited JSON, queues submitted
//! jobs FIFO, and executes them one at a time on the existing worker
//! pool — cells within a job run in parallel, jobs serialise, so two
//! clients never fight over the same cores. Every job:
//!
//! * streams its results back incrementally — one [`JobEvent::Cell`]
//!   line per finished cell, carrying the *exact artifact bytes* the
//!   one-shot CLI writes, in grid order, then a final
//!   [`JobEvent::Done`] with the job's [`JobStatus`];
//! * writes its artifacts under `<out>/serve/<job-id>/<sweep>/`,
//!   byte-identical to a one-shot run of the same sweep (pinned by
//!   `tests/service.rs`);
//! * shares the daemon-wide content-addressed cell cache
//!   ([`crate::cache`]), so a resubmitted or overlapping grid recomputes
//!   nothing — the second identical submission completes with zero
//!   cells simulated, which its cache-hit telemetry proves;
//! * appends a `cmd: "serve"` run-ledger record (one per job) with
//!   per-cell events and the cache-hit footer counters, queryable via
//!   `run -- runs` like any one-shot run.
//!
//! Wire protocol, job lifecycle and a multi-client walkthrough are
//! documented in `docs/SERVICE.md`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ms_prof::jsonv::Value;
use ms_prof::ledger::{ProgressSink, RunLedger, RunMeta};

use crate::api::{CellResult, JobEvent, JobState, JobStatus, Request, SweepRequest};
use crate::cache::CellCache;
use crate::error::BenchError;
use crate::perfcmd;
use crate::progress::SweepObserver;
use crate::sweeps::{run_sweep, Engine};

/// How the daemon runs: where it listens, where artifacts and the
/// cache live, and how wide the per-job worker pool is.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// The Unix socket path to listen on.
    pub socket: PathBuf,
    /// Default worker threads per job (a submit's `jobs` overrides).
    pub jobs: usize,
    /// Artifact root; jobs write under `<out>/serve/<job-id>/`.
    pub out: PathBuf,
    /// Content-addressed cell cache directory.
    pub cache_dir: PathBuf,
    /// Run-ledger directory (one record per job).
    pub runs_dir: PathBuf,
    /// Suppress the daemon's stdout log lines.
    pub quiet: bool,
}

/// One tracked job: its public status plus the submit's optional
/// worker-count override (the queue position is implicit in
/// [`State::queue`]).
#[derive(Debug)]
struct JobRecord {
    status: JobStatus,
    workers: Option<usize>,
}

/// Mutable server state behind one mutex: the job table (append-only,
/// `job-<n>` ids index it) and the FIFO of queued jobs with the client
/// connections their events stream to.
struct State {
    jobs: Vec<JobRecord>,
    queue: VecDeque<(usize, UnixStream)>,
    shutdown: bool,
}

struct Inner {
    opts: ServeOptions,
    state: Mutex<State>,
    cv: Condvar,
    cache: CellCache,
}

/// A running daemon: bind with [`Server::start`], block until a client
/// asks it to exit with [`Server::join`]. Tests drive it in-process;
/// `run -- serve` runs it in the foreground.
pub struct Server {
    inner: Arc<Inner>,
    accept: JoinHandle<()>,
    dispatch: JoinHandle<()>,
}

impl Server {
    /// Binds the socket and starts the accept and dispatcher threads.
    /// A stale socket file from a dead daemon is replaced; a *live*
    /// daemon on the same path is an error.
    pub fn start(opts: ServeOptions) -> Result<Server, BenchError> {
        if opts.socket.exists() {
            if UnixStream::connect(&opts.socket).is_ok() {
                return Err(BenchError::Usage(format!(
                    "a daemon is already listening on {} (run -- shutdown first)",
                    opts.socket.display()
                )));
            }
            std::fs::remove_file(&opts.socket)?;
        }
        if let Some(dir) = opts.socket.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let listener = UnixListener::bind(&opts.socket)?;
        let cache = CellCache::at(&opts.cache_dir)?;
        let inner = Arc::new(Inner {
            opts,
            state: Mutex::new(State { jobs: Vec::new(), queue: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            cache,
        });

        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_inner.state.lock().unwrap().shutdown {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let conn_inner = Arc::clone(&accept_inner);
                std::thread::spawn(move || handle_conn(&conn_inner, stream));
            }
        });
        let dispatch_inner = Arc::clone(&inner);
        let dispatch = std::thread::spawn(move || dispatcher(&dispatch_inner));

        Ok(Server { inner, accept, dispatch })
    }

    /// The socket the daemon listens on.
    pub fn socket(&self) -> &Path {
        &self.inner.opts.socket
    }

    /// Blocks until a `shutdown` request has drained the queue, then
    /// removes the socket file. Returns the number of jobs served.
    pub fn join(self) -> Result<usize, BenchError> {
        self.accept.join().map_err(|_| BenchError::Usage("accept thread panicked".into()))?;
        self.dispatch.join().map_err(|_| BenchError::Usage("dispatcher panicked".into()))?;
        let _ = std::fs::remove_file(&self.inner.opts.socket);
        Ok(self.inner.state.lock().unwrap().jobs.len())
    }
}

fn send_line(stream: &mut UnixStream, ev: &JobEvent) -> std::io::Result<()> {
    stream.write_all((ev.to_json() + "\n").as_bytes())
}

fn log(inner: &Inner, msg: &str) {
    if !inner.opts.quiet {
        println!("serve: {msg}");
    }
}

/// One client connection: read a single request line, answer it.
/// `submit` hands the connection to the dispatcher (the job's event
/// stream); everything else answers inline and closes.
fn handle_conn(inner: &Arc<Inner>, stream: UnixStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut stream = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).is_err() {
        return;
    }
    let req = match Request::from_json(line.trim_end()) {
        Ok(r) => r,
        Err(e) => {
            let _ =
                send_line(&mut stream, &JobEvent::Error { message: format!("bad request: {e}") });
            return;
        }
    };
    match req {
        Request::Ping => {
            let _ = send_line(&mut stream, &JobEvent::Pong);
        }
        Request::Jobs => {
            let jobs = inner.state.lock().unwrap().jobs.iter().map(|j| j.status.clone()).collect();
            let _ = send_line(&mut stream, &JobEvent::Jobs { jobs });
        }
        Request::Status { job } => {
            let found = inner
                .state
                .lock()
                .unwrap()
                .jobs
                .iter()
                .find(|j| j.status.id == job)
                .map(|j| j.status.clone());
            let _ = match found {
                Some(status) => send_line(&mut stream, &JobEvent::Jobs { jobs: vec![status] }),
                None => send_line(
                    &mut stream,
                    &JobEvent::Error { message: format!("unknown job `{job}`") },
                ),
            };
        }
        Request::Shutdown => {
            let queued = {
                let mut st = inner.state.lock().unwrap();
                st.shutdown = true;
                st.queue.len()
            };
            inner.cv.notify_all();
            // Wake the accept loop so it can observe the flag.
            let _ = UnixStream::connect(&inner.opts.socket);
            log(inner, &format!("shutdown requested, draining {queued} queued job(s)"));
            let _ = send_line(&mut stream, &JobEvent::Ok);
        }
        Request::Submit(req) => submit_job(inner, req, stream),
    }
}

/// Validates and enqueues a submission; the connection moves into the
/// queue so the dispatcher can stream the job's events over it.
fn submit_job(inner: &Arc<Inner>, req: SweepRequest, mut stream: UnixStream) {
    if let Err(e) = req.resolve() {
        let _ = send_line(&mut stream, &JobEvent::Error { message: e.to_string() });
        return;
    }
    let mut st = inner.state.lock().unwrap();
    if st.shutdown {
        drop(st);
        let _ = send_line(
            &mut stream,
            &JobEvent::Error { message: "daemon is shutting down".to_string() },
        );
        return;
    }
    let id = format!("job-{}", st.jobs.len() + 1);
    let queue_depth = st.queue.len() as u64;
    let status = JobStatus {
        id: id.clone(),
        state: JobState::Queued,
        sweeps: req.sweeps.clone(),
        cells_done: 0,
        cache_hits: 0,
        cache_misses: 0,
        artifacts_root: inner.opts.out.join("serve").join(&id).display().to_string(),
    };
    st.jobs.push(JobRecord { status, workers: req.jobs });
    let idx = st.jobs.len() - 1;
    let accepted = JobEvent::Accepted { job: id.clone(), queue_depth };
    // A failed write means the client vanished between connect and
    // accept: run the job anyway — it warms the cache and leaves its
    // ledger record.
    let _ = send_line(&mut stream, &accepted);
    st.queue.push_back((idx, stream));
    drop(st);
    inner.cv.notify_all();
    log(inner, &format!("{id} submitted (queue depth {queue_depth})"));
}

/// The dispatcher: pops queued jobs FIFO and runs each to completion;
/// exits once shutdown is requested and the queue is drained.
fn dispatcher(inner: &Arc<Inner>) {
    loop {
        let (idx, stream) = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if let Some(next) = st.queue.pop_front() {
                    break next;
                }
                if st.shutdown {
                    return;
                }
                st = inner.cv.wait(st).unwrap();
            }
        };
        run_job(inner, idx, stream);
    }
}

/// Executes one job: per-job ledger, shared cache, incremental cell
/// stream, final status. Never panics the dispatcher — failures close
/// the job as `Failed`.
fn run_job(inner: &Arc<Inner>, idx: usize, stream: UnixStream) {
    let (job_id, sweeps, workers) = {
        let mut st = inner.state.lock().unwrap();
        st.jobs[idx].status.state = JobState::Running;
        (
            st.jobs[idx].status.id.clone(),
            st.jobs[idx].status.sweeps.clone(),
            st.jobs[idx].workers.unwrap_or(inner.opts.jobs).max(1),
        )
    };
    let req = SweepRequest { sweeps: sweeps.clone(), jobs: None };
    let specs = req.resolve().expect("validated at submit");
    let out_root = inner.opts.out.join("serve").join(&job_id);

    let meta = RunMeta {
        cmd: "serve".to_string(),
        argv: std::iter::once(job_id.clone()).chain(sweeps.iter().cloned()).collect(),
        git: perfcmd::git_short(),
        params: vec![
            ("job".to_string(), job_id.clone()),
            ("sweeps".to_string(), sweeps.join(",")),
            ("jobs".to_string(), workers.to_string()),
            ("socket".to_string(), inner.opts.socket.display().to_string()),
            ("cache_dir".to_string(), inner.opts.cache_dir.display().to_string()),
            ("out".to_string(), out_root.display().to_string()),
        ],
    };
    let led = RefCell::new(match RunLedger::open(&inner.opts.runs_dir, &meta) {
        Ok(l) => Some(l),
        Err(e) => {
            log(inner, &format!("warning: run ledger disabled for {job_id}: {e}"));
            None
        }
    });

    let sink = ProgressSink::new(workers);
    let stream = RefCell::new(stream);
    let on_cell = |res: &CellResult| {
        let _ = send_line(
            &mut stream.borrow_mut(),
            &JobEvent::Cell { job: job_id.clone(), result: res.clone() },
        );
        if let Some(l) = led.borrow_mut().as_mut() {
            l.event(
                "cell",
                vec![
                    ("sweep", Value::Str(res.sweep.clone())),
                    ("cell", Value::Str(res.cell.clone())),
                    ("cached", Value::Bool(res.cached)),
                ],
            );
            let path = out_root.join(&res.sweep).join(format!("{}.json", res.cell));
            l.artifact(&path.display().to_string());
        }
        let mut st = inner.state.lock().unwrap();
        let s = &mut st.jobs[idx].status;
        s.cells_done += 1;
        if res.cached {
            s.cache_hits += 1;
        } else {
            s.cache_misses += 1;
        }
    };
    let obs = SweepObserver {
        sink: &sink,
        on_tick: &|| {},
        cache: Some(&inner.cache),
        on_cell: &on_cell,
    };

    let mut code = 0;
    for spec in &specs {
        let before = sink.snapshot();
        let _ = send_line(
            &mut stream.borrow_mut(),
            &JobEvent::SweepStarted { job: job_id.clone(), sweep: spec.name().to_string() },
        );
        match run_sweep(*spec, workers, &out_root, &obs, Engine::default()) {
            Ok(report) => {
                let after = sink.snapshot();
                let _ = send_line(
                    &mut stream.borrow_mut(),
                    &JobEvent::SweepDone {
                        job: job_id.clone(),
                        sweep: spec.name().to_string(),
                        cells: report.cells as u64,
                        cache_hits: after.cache_hits - before.cache_hits,
                        cache_misses: after.cache_misses - before.cache_misses,
                    },
                );
                if let Some(l) = led.borrow_mut().as_mut() {
                    l.artifact(&out_root.join(report.name).join("report.md").display().to_string());
                }
            }
            Err(e) => {
                let _ = send_line(
                    &mut stream.borrow_mut(),
                    &JobEvent::Error { message: format!("sweep {}: {e}", spec.name()) },
                );
                code = 1;
                break;
            }
        }
    }

    let status = {
        let mut st = inner.state.lock().unwrap();
        let s = &mut st.jobs[idx].status;
        s.state = if code == 0 { JobState::Done } else { JobState::Failed };
        s.clone()
    };
    if let Some(l) = led.into_inner() {
        let outcome = if code == 0 { "ok" } else { "failed" };
        if let Err(e) = l.close(outcome, code, &sink.snapshot()) {
            log(inner, &format!("warning: run record for {job_id} not closed: {e}"));
        }
    }
    log(
        inner,
        &format!(
            "{job_id} {}: {} cells, {} cached, {} computed",
            status.state.label(),
            status.cells_done,
            status.cache_hits,
            status.cache_misses
        ),
    );
    let _ = send_line(&mut stream.borrow_mut(), &JobEvent::Done { status });
}

// ---------------------------------------------------------------- client

fn connect(socket: &Path) -> Result<UnixStream, BenchError> {
    UnixStream::connect(socket).map_err(|e| {
        BenchError::Usage(format!(
            "cannot reach daemon at {} ({e}); start one with `run -- serve`",
            socket.display()
        ))
    })
}

fn send_request(stream: &mut UnixStream, req: &Request) -> Result<(), BenchError> {
    stream.write_all((req.to_json() + "\n").as_bytes())?;
    Ok(())
}

fn read_event(reader: &mut impl BufRead) -> Result<JobEvent, BenchError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(BenchError::Usage("daemon closed the connection".to_string()));
    }
    JobEvent::from_json(line.trim_end())
        .map_err(|e| BenchError::Usage(format!("bad event from daemon: {e}")))
}

/// `run -- submit`: sends a sweep request, prints the streamed
/// progress (unless `quiet`), and returns the final job status.
pub fn submit(socket: &Path, req: &SweepRequest, quiet: bool) -> Result<JobStatus, BenchError> {
    let mut stream = connect(socket)?;
    send_request(&mut stream, &Request::Submit(req.clone()))?;
    let mut reader = BufReader::new(stream);
    loop {
        match read_event(&mut reader)? {
            JobEvent::Accepted { job, queue_depth } => {
                if !quiet {
                    println!("submitted {job} (queue depth {queue_depth})");
                }
            }
            JobEvent::SweepDone { sweep, cells, cache_hits, cache_misses, .. } => {
                if !quiet {
                    println!("sweep {sweep}: {cells} cells ({cache_hits} cached, {cache_misses} computed)");
                }
            }
            JobEvent::Done { status } => {
                if !quiet {
                    println!(
                        "job {} {}: {} cells, {} cached, {} computed",
                        status.id,
                        status.state.label(),
                        status.cells_done,
                        status.cache_hits,
                        status.cache_misses
                    );
                    println!("[artifacts    -> {}]", status.artifacts_root);
                }
                if status.state == JobState::Failed {
                    return Err(BenchError::Usage(format!("job {} failed", status.id)));
                }
                return Ok(status);
            }
            JobEvent::Error { message } => return Err(BenchError::Usage(message)),
            JobEvent::SweepStarted { .. } | JobEvent::Cell { .. } => {}
            other => {
                return Err(BenchError::Usage(format!("unexpected event: {}", other.to_json())))
            }
        }
    }
}

/// `run -- jobs [id]`: the daemon's job table (all jobs, or one).
pub fn jobs_table(socket: &Path, job: Option<&str>) -> Result<String, BenchError> {
    let mut stream = connect(socket)?;
    let req = match job {
        Some(id) => Request::Status { job: id.to_string() },
        None => Request::Jobs,
    };
    send_request(&mut stream, &req)?;
    let mut reader = BufReader::new(stream);
    match read_event(&mut reader)? {
        JobEvent::Jobs { jobs } => {
            let mut out = format!(
                "{:<8} {:<8} {:>6} {:>6} {:>6}  {}\n",
                "job", "state", "cells", "hits", "miss", "sweeps"
            );
            for s in &jobs {
                out.push_str(&format!(
                    "{:<8} {:<8} {:>6} {:>6} {:>6}  {}\n",
                    s.id,
                    s.state.label(),
                    s.cells_done,
                    s.cache_hits,
                    s.cache_misses,
                    s.sweeps.join(",")
                ));
            }
            if jobs.is_empty() {
                out.push_str("(no jobs submitted yet)\n");
            }
            Ok(out)
        }
        JobEvent::Error { message } => Err(BenchError::Usage(message)),
        other => Err(BenchError::Usage(format!("unexpected event: {}", other.to_json()))),
    }
}

/// `run -- shutdown`: asks the daemon to drain its queue and exit.
pub fn shutdown(socket: &Path) -> Result<(), BenchError> {
    let mut stream = connect(socket)?;
    send_request(&mut stream, &Request::Shutdown)?;
    let mut reader = BufReader::new(stream);
    match read_event(&mut reader)? {
        JobEvent::Ok => Ok(()),
        JobEvent::Error { message } => Err(BenchError::Usage(message)),
        other => Err(BenchError::Usage(format!("unexpected event: {}", other.to_json()))),
    }
}

/// Liveness probe (the smoke gate polls this while the daemon boots).
pub fn ping(socket: &Path) -> Result<(), BenchError> {
    let mut stream = connect(socket)?;
    send_request(&mut stream, &Request::Ping)?;
    let mut reader = BufReader::new(stream);
    match read_event(&mut reader)? {
        JobEvent::Pong => Ok(()),
        other => Err(BenchError::Usage(format!("unexpected event: {}", other.to_json()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(tag: &str) -> ServeOptions {
        let root = std::env::temp_dir().join(format!("ms-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        ServeOptions {
            socket: root.join("serve.sock"),
            jobs: 2,
            out: root.join("out"),
            cache_dir: root.join("cellcache"),
            runs_dir: root.join("runs"),
            quiet: true,
        }
    }

    #[test]
    fn ping_jobs_and_shutdown_round_trip() {
        let server = Server::start(opts("ping")).unwrap();
        let socket = server.socket().to_path_buf();
        ping(&socket).unwrap();
        let table = jobs_table(&socket, None).unwrap();
        assert!(table.contains("(no jobs submitted yet)"), "{table}");
        assert!(jobs_table(&socket, Some("job-9")).is_err(), "unknown job errors");
        shutdown(&socket).unwrap();
        assert_eq!(server.join().unwrap(), 0);
        assert!(ping(&socket).is_err(), "socket is gone after join");
    }

    #[test]
    fn second_daemon_on_a_live_socket_is_rejected() {
        let server = Server::start(opts("dup")).unwrap();
        let socket = server.socket().to_path_buf();
        ping(&socket).unwrap();
        let err = Server::start(ServeOptions { socket: socket.clone(), ..opts("dup2") });
        assert!(err.is_err(), "live socket must not be stolen");
        shutdown(&socket).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn bad_submissions_error_without_queueing() {
        let server = Server::start(opts("bad")).unwrap();
        let socket = server.socket().to_path_buf();
        let req = SweepRequest { sweeps: vec!["figur5".to_string()], jobs: None };
        let err = submit(&socket, &req, true).unwrap_err().to_string();
        assert!(err.contains("figure5"), "suggestion crosses the wire: {err}");
        let table = jobs_table(&socket, None).unwrap();
        assert!(table.contains("(no jobs submitted yet)"), "{table}");
        shutdown(&socket).unwrap();
        server.join().unwrap();
    }
}
