//! Criterion micro-benchmarks: predictor update throughput.
//!
//! The predictors sit on the simulator's hot path — every control
//! transfer touches gshare, every dynamic task the path-based predictor.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ms_sim::{Gshare, TaskPredictor};

fn bench_gshare(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("gshare_update", |b| {
        b.iter(|| {
            let mut g = Gshare::new(16, 16);
            let mut hits = 0u64;
            for i in 0..N {
                let pc = 0x1000 + (i % 64) * 4;
                if g.predict_and_update(pc, i % 3 != 0) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("task_pred_update", |b| {
        b.iter(|| {
            let mut t = TaskPredictor::new(16, 16);
            let mut hits = 0u64;
            for i in 0..N {
                let pc = 0x8000 + (i % 32) * 16;
                if t.predict_and_update(pc, (i % 4) as usize, 4) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gshare);
criterion_main!(benches);
