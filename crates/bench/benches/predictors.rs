//! Micro-benchmarks: predictor update throughput.
//!
//! The predictors sit on the simulator's hot path — every control
//! transfer touches gshare, every dynamic task the path-based predictor.
//!
//! ```text
//! cargo bench -p ms-bench --bench predictors
//! ```

use ms_bench::microbench::bench;
use ms_sim::{Gshare, TaskPredictor};

fn main() {
    const N: u64 = 10_000;
    bench("predictors/gshare_update", Some(N), || {
        let mut g = Gshare::new(16, 16);
        let mut hits = 0u64;
        for i in 0..N {
            let pc = 0x1000 + (i % 64) * 4;
            if g.predict_and_update(pc, i % 3 != 0) {
                hits += 1;
            }
        }
        hits
    });
    bench("predictors/task_pred_update", Some(N), || {
        let mut t = TaskPredictor::new(16, 16);
        let mut hits = 0u64;
        for i in 0..N {
            let pc = 0x8000 + (i % 32) * 16;
            if t.predict_and_update(pc, (i % 4) as usize, 4) {
                hits += 1;
            }
        }
        hits
    });
}
