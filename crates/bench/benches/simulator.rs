//! Micro-benchmarks: simulator throughput.
//!
//! Measures how many dynamic instructions per second the cycle-level
//! engine retires — the cost of one Figure 5 cell.
//!
//! ```text
//! cargo bench -p ms-bench --bench simulator
//! ```

use ms_analysis::ProgramContext;
use ms_bench::microbench::bench;
use ms_sim::{SimConfig, Simulator};
use ms_tasksel::{SelectorBuilder, Strategy};
use ms_trace::TraceGenerator;
use ms_workloads::by_name;

fn main() {
    const INSTS: usize = 20_000;
    for name in ["perl", "applu"] {
        let program = by_name(name).expect("known benchmark").build();
        let sel = SelectorBuilder::new(Strategy::ControlFlow)
            .max_targets(4)
            .build()
            .select(&ProgramContext::new(program));
        let trace = TraceGenerator::new(&sel.program, 1).generate(INSTS);
        for pus in [4usize, 8] {
            bench(&format!("simulator/{pus}pu/{name}"), Some(trace.num_insts() as u64), || {
                Simulator::new(SimConfig::with_pus(pus), &sel.program, &sel.partition).run(&trace)
            });
        }
    }

    let program = by_name("gcc").expect("known benchmark").build();
    bench("trace_generation/gcc_50k", Some(50_000), || {
        TraceGenerator::new(&program, 1).generate(50_000)
    });
}
