//! Criterion micro-benchmarks: simulator throughput.
//!
//! Measures how many dynamic instructions per second the cycle-level
//! engine retires — the cost of one Figure 5 cell.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ms_sim::{SimConfig, Simulator};
use ms_tasksel::TaskSelector;
use ms_trace::TraceGenerator;
use ms_workloads::by_name;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    const INSTS: usize = 20_000;
    for name in ["perl", "applu"] {
        let program = by_name(name).expect("known benchmark").build();
        let sel = TaskSelector::control_flow(4).select(&program);
        let trace = TraceGenerator::new(&sel.program, 1).generate(INSTS);
        group.throughput(Throughput::Elements(trace.num_insts() as u64));
        for pus in [4usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("{pus}pu"), name),
                &trace,
                |b, t| {
                    b.iter(|| {
                        Simulator::new(SimConfig::with_pus(pus), &sel.program, &sel.partition)
                            .run(t)
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    let program = by_name("gcc").expect("known benchmark").build();
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("gcc_50k", |b| {
        b.iter(|| TraceGenerator::new(&program, 1).generate(50_000))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_trace_generation);
criterion_main!(benches);
