//! Criterion micro-benchmarks: task selection throughput.
//!
//! Measures the compiler-side cost of the paper's heuristics — how fast
//! each strategy partitions a realistic program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ms_tasksel::{TaskSelector, TaskSizeParams};
use ms_workloads::by_name;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("task_selection");
    for name in ["gcc", "tomcatv"] {
        let program = by_name(name).expect("known benchmark").build();
        group.bench_with_input(BenchmarkId::new("basic_block", name), &program, |b, p| {
            b.iter(|| TaskSelector::basic_block().select(p))
        });
        group.bench_with_input(BenchmarkId::new("control_flow", name), &program, |b, p| {
            b.iter(|| TaskSelector::control_flow(4).select(p))
        });
        group.bench_with_input(BenchmarkId::new("data_dependence", name), &program, |b, p| {
            b.iter(|| TaskSelector::data_dependence(4).select(p))
        });
        group.bench_with_input(BenchmarkId::new("dd_task_size", name), &program, |b, p| {
            b.iter(|| {
                TaskSelector::data_dependence(4)
                    .with_task_size(TaskSizeParams::default())
                    .select(p)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
