//! Micro-benchmarks: task selection throughput.
//!
//! Measures the compiler-side cost of the paper's heuristics — how fast
//! each strategy partitions a realistic program.
//!
//! ```text
//! cargo bench -p ms-bench --bench selection
//! ```

use ms_bench::microbench::bench;
use ms_tasksel::{TaskSelector, TaskSizeParams};
use ms_workloads::by_name;

fn main() {
    for name in ["gcc", "tomcatv"] {
        let program = by_name(name).expect("known benchmark").build();
        bench(&format!("task_selection/basic_block/{name}"), None, || {
            TaskSelector::basic_block().select(&program)
        });
        bench(&format!("task_selection/control_flow/{name}"), None, || {
            TaskSelector::control_flow(4).select(&program)
        });
        bench(&format!("task_selection/data_dependence/{name}"), None, || {
            TaskSelector::data_dependence(4).select(&program)
        });
        bench(&format!("task_selection/dd_task_size/{name}"), None, || {
            TaskSelector::data_dependence(4)
                .with_task_size(TaskSizeParams::default())
                .select(&program)
        });
    }
}
