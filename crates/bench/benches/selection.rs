//! Micro-benchmarks: task selection throughput.
//!
//! Measures the compiler-side cost of the paper's heuristics — how fast
//! each strategy partitions a realistic program.
//!
//! ```text
//! cargo bench -p ms-bench --bench selection
//! ```

use ms_analysis::ProgramContext;
use ms_bench::microbench::bench;
use ms_tasksel::{SelectorBuilder, Strategy, TaskSizeParams};
use ms_workloads::by_name;

fn main() {
    for name in ["gcc", "tomcatv"] {
        let program = by_name(name).expect("known benchmark").build();
        // Cold context per call: the analyses are part of the measured cost.
        bench(&format!("task_selection/cold_context/{name}"), None, || {
            SelectorBuilder::new(Strategy::ControlFlow)
                .max_targets(4)
                .build()
                .select(&ProgramContext::new(program.clone()))
        });
        // Warm shared context: selection proper, analyses served from cache.
        let ctx = ProgramContext::new(program);
        ctx.warm(true);
        bench(&format!("task_selection/basic_block/{name}"), None, || {
            SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx)
        });
        bench(&format!("task_selection/control_flow/{name}"), None, || {
            SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx)
        });
        bench(&format!("task_selection/data_dependence/{name}"), None, || {
            SelectorBuilder::new(Strategy::DataDependence).max_targets(4).build().select(&ctx)
        });
        bench(&format!("task_selection/dd_task_size/{name}"), None, || {
            SelectorBuilder::new(Strategy::DataDependence)
                .max_targets(4)
                .task_size(TaskSizeParams::default())
                .build()
                .select(&ctx)
        });
    }
}
