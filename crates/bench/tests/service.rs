//! End-to-end tests for the sweep service daemon (`run -- serve`).
//!
//! These drive a real in-process [`Server`] over its Unix socket and
//! pin the tentpole guarantees of `docs/SERVICE.md`:
//!
//! * a served job's artifacts are **byte-identical** to a one-shot
//!   `run -- <sweep>` of the same grid;
//! * resubmitting an identical grid is served **entirely** from the
//!   content-addressed cell cache — zero cells simulated, proven by
//!   the hit/miss counters in the final [`JobStatus`];
//! * concurrent clients are both served (jobs serialise FIFO, the
//!   later one rides the cache warmed by the earlier one);
//! * every served job leaves a `cmd: "serve"` run-ledger record.

use std::fs;
use std::path::{Path, PathBuf};

use ms_bench::api::{JobState, SweepRequest};
use ms_bench::progress::SweepObserver;
use ms_bench::servecmd::{self, ServeOptions, Server};
use ms_bench::sweeps::{run_sweep, Engine, SweepSpec};

fn fresh_root(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("ms-service-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(&root).unwrap();
    root
}

fn opts(root: &Path) -> ServeOptions {
    ServeOptions {
        socket: root.join("serve.sock"),
        jobs: 2,
        out: root.join("daemon-out"),
        cache_dir: root.join("cellcache"),
        runs_dir: root.join("runs"),
        quiet: true,
    }
}

/// Every regular file under `dir`, as sorted dir-relative paths.
fn files_under(dir: &Path) -> Vec<PathBuf> {
    fn walk(dir: &Path, base: &Path, out: &mut Vec<PathBuf>) {
        for entry in fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                walk(&path, base, out);
            } else {
                out.push(path.strip_prefix(base).unwrap().to_path_buf());
            }
        }
    }
    let mut out = Vec::new();
    walk(dir, dir, &mut out);
    out.sort();
    out
}

/// Asserts the two trees hold the same files with the same bytes.
fn assert_trees_identical(a: &Path, b: &Path) {
    let fa = files_under(a);
    let fb = files_under(b);
    assert_eq!(fa, fb, "file sets differ between {} and {}", a.display(), b.display());
    for rel in &fa {
        let ba = fs::read(a.join(rel)).unwrap();
        let bb = fs::read(b.join(rel)).unwrap();
        assert_eq!(ba, bb, "{} differs between {} and {}", rel.display(), a.display(), b.display());
    }
}

fn request(sweep: &str) -> SweepRequest {
    SweepRequest { sweeps: vec![sweep.to_string()], jobs: Some(2) }
}

#[test]
fn served_jobs_match_one_shot_artifacts_and_resubmits_are_pure_cache_hits() {
    let root = fresh_root("identity");

    // The reference: a one-shot CLI run of the same sweep (no cache).
    let oneshot = root.join("oneshot");
    let report =
        run_sweep(SweepSpec::Thresholds, 2, &oneshot, &SweepObserver::silent(), Engine::default())
            .unwrap();
    let cells = report.cells as u64;
    assert!(cells > 0);

    let server = Server::start(opts(&root)).unwrap();
    let socket = server.socket().to_path_buf();

    // Cold cache: every cell simulates, artifacts land under job-1.
    let first = servecmd::submit(&socket, &request("thresholds"), true).unwrap();
    assert_eq!(first.state, JobState::Done);
    assert_eq!(first.cells_done, cells);
    assert_eq!(first.cache_hits, 0, "cold cache cannot hit");
    assert_eq!(first.cache_misses, cells);
    let first_out = PathBuf::from(&first.artifacts_root);
    assert_trees_identical(&oneshot, &first_out);

    // Identical resubmission: served whole from the cell cache — zero
    // recompute — and still byte-identical.
    let second = servecmd::submit(&socket, &request("thresholds"), true).unwrap();
    assert_eq!(second.state, JobState::Done);
    assert_eq!(second.cells_done, cells);
    assert_eq!(second.cache_hits, cells, "resubmitted grid must be fully cached");
    assert_eq!(second.cache_misses, 0, "resubmitted grid must not simulate");
    assert_ne!(second.artifacts_root, first.artifacts_root);
    assert_trees_identical(&oneshot, Path::new(&second.artifacts_root));

    // The job table reflects both jobs.
    let table = servecmd::jobs_table(&socket, None).unwrap();
    assert!(table.contains("job-1"), "{table}");
    assert!(table.contains("job-2"), "{table}");
    let one = servecmd::jobs_table(&socket, Some("job-2")).unwrap();
    assert!(one.contains("done"), "{one}");

    // Each served job left a closed `cmd: "serve"` run-ledger record.
    let records: Vec<String> = fs::read_dir(root.join("runs"))
        .unwrap()
        .map(|e| fs::read_to_string(e.unwrap().path()).unwrap())
        .collect();
    assert_eq!(records.len(), 2, "one run record per served job");
    for rec in &records {
        assert!(rec.contains("\"cmd\":\"serve\""), "{rec}");
        assert!(rec.contains("\"outcome\":\"ok\""), "{rec}");
        assert!(rec.contains("cache_hits"), "{rec}");
    }

    servecmd::shutdown(&socket).unwrap();
    assert_eq!(server.join().unwrap(), 2);
}

#[test]
fn concurrent_clients_are_both_served_and_share_the_cache() {
    let root = fresh_root("concurrent");
    let server = Server::start(opts(&root)).unwrap();
    let socket = server.socket().to_path_buf();

    // Two clients race to submit the same grid; jobs serialise FIFO,
    // so whichever runs second is served from the first one's cells.
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let socket = socket.clone();
            std::thread::spawn(move || servecmd::submit(&socket, &request("forwarding"), true))
        })
        .collect();
    let mut statuses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap().unwrap()).collect();
    statuses.sort_by(|a, b| a.id.cmp(&b.id));

    assert_eq!(statuses.len(), 2);
    assert_eq!(statuses[0].id, "job-1");
    assert_eq!(statuses[1].id, "job-2");
    let cells = statuses[0].cells_done;
    assert!(cells > 0);
    for s in &statuses {
        assert_eq!(s.state, JobState::Done);
        assert_eq!(s.cells_done, cells);
        assert_eq!(s.cache_hits + s.cache_misses, cells);
    }
    // Exactly one grid's worth of simulation happened across both jobs.
    assert_eq!(statuses[0].cache_misses + statuses[1].cache_misses, cells);
    assert_eq!(statuses[0].cache_hits + statuses[1].cache_hits, cells);

    servecmd::shutdown(&socket).unwrap();
    assert_eq!(server.join().unwrap(), 2);
}
