//! Engine-identity contract at the sweep level: `--engine batch` and
//! `--engine scalar` must emit byte-identical artifacts, for any
//! `--jobs` level. The batch engine is allowed to change *when* cells
//! run (grouped, lockstep, shared decode) but never *what* they
//! produce — `run -- perf`'s trajectory and every committed golden
//! stays engine-agnostic because of this test.

use ms_bench::progress::SweepObserver;
use ms_bench::sweeps::{cell_json, run_sweep, CellJob, Engine, SweepSpec};
use ms_bench::Heuristic;

/// One full canonical sweep grid, four ways: {batch, scalar} x
/// {--jobs 1, --jobs 8}. Every artifact byte-identical across all four.
#[test]
fn sweep_artifacts_are_engine_and_jobs_invariant() {
    let runs = [
        (Engine::Batch, 1, tempdir("eng-ident-b1")),
        (Engine::Batch, 8, tempdir("eng-ident-b8")),
        (Engine::Scalar, 1, tempdir("eng-ident-s1")),
        (Engine::Scalar, 8, tempdir("eng-ident-s8")),
    ];
    for (engine, jobs, root) in &runs {
        run_sweep(SweepSpec::Targets, *jobs, root, &SweepObserver::silent(), *engine)
            .unwrap_or_else(|e| panic!("{} sweep at --jobs {jobs} failed: {e}", engine.label()));
    }
    let (_, _, reference) = &runs[0];
    let files = artifact_files(reference);
    assert!(!files.is_empty(), "sweep produced no artifacts");
    for (engine, jobs, root) in &runs[1..] {
        assert_eq!(
            artifact_files(root),
            files,
            "artifact file set differs ({} --jobs {jobs})",
            engine.label()
        );
        for rel in &files {
            let a = std::fs::read(reference.join(rel)).unwrap();
            let b = std::fs::read(root.join(rel)).unwrap();
            assert_eq!(
                a,
                b,
                "{rel}: artifact differs between batch --jobs 1 and {} --jobs {jobs}",
                engine.label()
            );
        }
    }
    for (_, _, root) in runs {
        std::fs::remove_dir_all(root).ok();
    }
}

/// The canonical perf cells themselves — the jobs `run -- perf` times —
/// produce identical artifacts through either engine, including the
/// threshold (dynamic data-dependence) and if-converted variants.
#[test]
fn canonical_cells_are_engine_invariant() {
    let jobs = [
        CellJob { insts: 4_000, ..CellJob::new("compress", Heuristic::ControlFlow) },
        CellJob { insts: 4_000, ..CellJob::new("go", Heuristic::DataDependence) },
        CellJob {
            insts: 4_000,
            ts_thresh: Some(12.0),
            ..CellJob::new("li", Heuristic::DataDependence)
        },
        CellJob {
            insts: 4_000,
            if_convert_arms: Some(8),
            ..CellJob::new("tomcatv", Heuristic::ControlFlow)
        },
    ];
    for (i, job) in jobs.iter().enumerate() {
        let s = cell_json("ident", &format!("cell-{i}"), job, &job.run_engine(Engine::Scalar));
        let b = cell_json("ident", &format!("cell-{i}"), job, &job.run_engine(Engine::Batch));
        assert_eq!(s, b, "cell {i}: batch and scalar artifacts diverge");
    }
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn artifact_files(root: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                out.push(path.strip_prefix(root).unwrap().to_string_lossy().into_owned());
            }
        }
    }
    out.sort();
    out
}
