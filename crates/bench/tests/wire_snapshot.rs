//! Pins the wire bytes of the typed request/event API (`ms_bench::api`)
//! as a golden snapshot: one line per protocol shape, exactly as it
//! crosses the daemon socket. Any field rename, reorder, or encoding
//! change shows up as a reviewed diff — and demands an
//! `API_SCHEMA_VERSION` bump (see `docs/SERVICE.md`).
//!
//! When a deliberate protocol change alters the lines, regenerate with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test wire_snapshot
//! ```

use std::path::PathBuf;

use ms_bench::api::{
    CellResult, JobEvent, JobState, JobStatus, Request, SweepRequest, API_SCHEMA_VERSION,
};

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn assert_golden(name: &str, got: &str) {
    let path = golden(name);
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "`{name}` changed; a wire-shape change needs an API_SCHEMA_VERSION bump, a \
         docs/SERVICE.md update, and an MS_BLESS=1 re-bless"
    );
}

fn sample_status() -> JobStatus {
    JobStatus {
        id: "job-2".to_string(),
        state: JobState::Done,
        sweeps: vec!["thresholds".to_string(), "forwarding".to_string()],
        cells_done: 22,
        cache_hits: 10,
        cache_misses: 12,
        artifacts_root: "target/experiments/serve/job-2".to_string(),
    }
}

/// Every request and event variant, one wire line each, in protocol
/// order: requests first, then the event stream a submit sees, then
/// the query/control answers.
fn snapshot() -> String {
    let requests = [
        Request::Submit(SweepRequest {
            sweeps: vec!["thresholds".to_string(), "forwarding".to_string()],
            jobs: Some(4),
        }),
        Request::Submit(SweepRequest { sweeps: vec!["pus".to_string()], jobs: None }),
        Request::Jobs,
        Request::Status { job: "job-2".to_string() },
        Request::Ping,
        Request::Shutdown,
    ];
    let events = [
        JobEvent::Accepted { job: "job-2".to_string(), queue_depth: 1 },
        JobEvent::SweepStarted { job: "job-2".to_string(), sweep: "thresholds".to_string() },
        JobEvent::Cell {
            job: "job-2".to_string(),
            result: CellResult {
                sweep: "thresholds".to_string(),
                cell: "compress-ts-off".to_string(),
                cached: true,
                artifact: "{\"schema_version\":1,\"cell\":\"compress-ts-off\"}".to_string(),
            },
        },
        JobEvent::SweepDone {
            job: "job-2".to_string(),
            sweep: "thresholds".to_string(),
            cells: 10,
            cache_hits: 10,
            cache_misses: 0,
        },
        JobEvent::Done { status: sample_status() },
        JobEvent::Jobs { jobs: vec![sample_status()] },
        JobEvent::Error { message: "unknown sweep `figur5`".to_string() },
        JobEvent::Pong,
        JobEvent::Ok,
    ];
    let mut out = String::new();
    for req in &requests {
        out.push_str(&req.to_json());
        out.push('\n');
    }
    for ev in &events {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

#[test]
fn wire_lines_are_stable() {
    assert_golden("wire_snapshot.txt", &snapshot());
}

#[test]
fn every_snapshot_line_carries_the_schema_version_and_round_trips() {
    // Structural backstop independent of the golden bytes: each line
    // must embed the version tag and decode back to an equal value.
    for line in snapshot().lines() {
        assert!(
            line.contains(&format!("\"api_version\":{API_SCHEMA_VERSION}")),
            "unversioned wire line: {line}"
        );
        let as_req = Request::from_json(line);
        let as_ev = JobEvent::from_json(line);
        assert!(
            as_req.is_ok() || as_ev.is_ok(),
            "snapshot line decodes as neither request nor event: {line}"
        );
        if let Ok(req) = as_req {
            assert_eq!(req.to_json(), line, "request re-encode drifts");
        } else if let Ok(ev) = as_ev {
            assert_eq!(ev.to_json(), line, "event re-encode drifts");
        }
    }
}
