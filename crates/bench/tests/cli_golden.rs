//! Pins the user-facing CLI text: `run -- help` and `run -- list` are
//! golden files, so a flag or subcommand rename shows up as a reviewed
//! diff instead of silently drifting away from the docs.
//!
//! When a deliberate CLI change alters the text, regenerate with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test cli_golden
//! ```
//!
//! and update the command tables in `EXPERIMENTS.md` to match.

use std::path::PathBuf;

use ms_bench::cli;

fn golden(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

fn assert_golden(name: &str, got: &str) {
    let path = golden(name);
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "`{name}` changed; if intentional, re-bless with MS_BLESS=1 and \
         update EXPERIMENTS.md"
    );
}

#[test]
fn help_text_is_stable() {
    assert_golden("help.txt", &cli::help_text());
}

#[test]
fn list_text_is_stable() {
    assert_golden("list.txt", &cli::list_text());
}

#[test]
fn policies_text_is_stable() {
    assert_golden("policies.txt", &cli::policies_text());
}

#[test]
fn list_text_names_every_benchmark_and_sweep() {
    // Structural backstop independent of the golden bytes: `list` must
    // enumerate the full registry, whatever the formatting.
    let text = cli::list_text();
    for w in ms_workloads::suite() {
        assert!(text.contains(w.name), "list must mention benchmark `{}`", w.name);
    }
    for name in ms_bench::sweeps::SWEEP_NAMES {
        assert!(text.contains(name), "list must mention sweep `{name}`");
    }
}
