//! End-to-end tests for the run ledger (`docs/OBSERVABILITY.md`): a
//! golden `runs` table over hand-written fixture records, a
//! process-level schema round-trip (sweep → record → `runs-validate`),
//! and the determinism contract — the emitted event stream and every
//! sweep artifact must be bit-identical between `--jobs 1` and
//! `--jobs 8`, progress machinery notwithstanding.
//!
//! The golden file regenerates with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test ledger
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use ms_bench::runscmd;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-ledger-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_bin(runs_dir: &Path, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_run"))
        .env("MS_RUNS_DIR", runs_dir)
        .args(args)
        .output()
        .expect("spawn run binary")
}

/// A complete, validating run record as literal JSONL — fixed
/// `duration_ns` and timestamps keep the rendered table reproducible
/// (a live `close()` measures real wall time, which never is).
fn fixture_record(id: &str, ts: u64, cmd: &str, cells: usize, duration_ns: u64) -> String {
    let mut lines = vec![format!(
        "{{\"schema_version\":1,\"format\":\"ms-run-ledger\",\"record\":\"header\",\
         \"id\":\"{id}\",\"ts\":{ts},\"git\":\"abc1234\",\"cmd\":\"{cmd}\",\
         \"argv\":[\"{cmd}\"],\"params\":{{\"jobs\":\"8\"}},\
         \"machine\":{{\"os\":\"linux\",\"arch\":\"x86_64\",\"cpus\":8}}}}"
    )];
    let mut artifacts = Vec::new();
    for i in 0..cells {
        lines.push(format!("{{\"record\":\"event\",\"event\":\"cell\",\"cell\":\"cell-{i}\"}}"));
        artifacts.push(format!("\"target/x/cell-{i}.json\""));
    }
    lines.push(format!(
        "{{\"record\":\"footer\",\"outcome\":\"ok\",\"exit_code\":0,\
         \"duration_ns\":{duration_ns},\"events\":{cells},\"cells\":{cells},\
         \"artifacts\":[{}],\"progress\":{{\"queued\":{cells},\"started\":{cells},\
         \"finished\":{cells},\"warm_hits\":0,\"workers\":[{{\"busy_ns\":1000,\
         \"items\":{cells}}}]}}}}",
        artifacts.join(",")
    ));
    lines.join("\n") + "\n"
}

#[test]
fn runs_table_is_golden() {
    let runs = tmp_dir("golden");
    for (id, ts, cmd, cells, dur) in [
        ("20250801T000000Z-abc1234-forwarding", 1_754_006_400_u64, "forwarding", 12, 1_500_000_000),
        ("20250808T000000Z-abc1234-perf", 1_754_611_200, "perf", 6, 32_000_000_000),
        ("20250815T000000Z-abc1234-fuzz", 1_755_216_000, "fuzz", 0, 4_250_000_000),
    ] {
        std::fs::write(runs.join(format!("{id}.jsonl")), fixture_record(id, ts, cmd, cells, dur))
            .unwrap();
    }
    // An interrupted invocation (header only) surfaces as `open`, and
    // junk as `invalid` — neither may vanish from the table.
    std::fs::write(
        runs.join("20250822T000000Z-abc1234-targets.jsonl"),
        "{\"schema_version\":1,\"format\":\"ms-run-ledger\",\"record\":\"header\",\
         \"id\":\"20250822T000000Z-abc1234-targets\",\"ts\":1755820800,\"git\":\"abc1234\",\
         \"cmd\":\"targets\",\"argv\":[\"targets\"],\"params\":{},\
         \"machine\":{\"os\":\"linux\",\"arch\":\"x86_64\",\"cpus\":8}}\n",
    )
    .unwrap();
    std::fs::write(runs.join("20250829T000000Z-zzzzzzz-junk.jsonl"), "not json\n").unwrap();

    let got = runscmd::list_runs(&runs, 20, None);
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/runs_list.txt");
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "runs table changed; if intentional, re-bless with MS_BLESS=1 and \
         update docs/OBSERVABILITY.md"
    );
    let _ = std::fs::remove_dir_all(&runs);
}

#[test]
fn sweep_leaves_a_validating_record_the_listing_finds() {
    let runs = tmp_dir("roundtrip");
    let out = tmp_dir("roundtrip-out");

    let sweep = run_bin(&runs, &["forwarding", "--jobs", "2", "--out", out.to_str().unwrap()]);
    assert!(sweep.status.success(), "{}", String::from_utf8_lossy(&sweep.stderr));
    let stdout = String::from_utf8_lossy(&sweep.stdout);
    assert!(stdout.contains("[run record   -> "), "stdout should name the record: {stdout}");

    // The record validates against the ledger schema...
    let validate = run_bin(&runs, &["runs-validate"]);
    assert!(validate.status.success(), "{}", String::from_utf8_lossy(&validate.stdout));
    assert!(String::from_utf8_lossy(&validate.stdout).contains("valid ms-run-ledger record"));

    // ...the listing finds it with reconciled counts (12 cells, 12
    // cell artifacts + report.md)...
    let list = run_bin(&runs, &["runs", "--last", "1"]);
    assert!(list.status.success());
    let listing = String::from_utf8_lossy(&list.stdout).to_string();
    let row = listing.lines().nth(1).expect("one data row");
    assert!(row.contains("forwarding") && row.contains("ok"), "{row}");
    assert!(row.ends_with("12    12        13"), "events/cells/artifacts reconcile: {row}");

    // ...and every artifact path the footer lists actually exists.
    let record_path = runscmd::record_files(&runs).pop().expect("one record");
    let text = std::fs::read_to_string(&record_path).unwrap();
    let rec = ms_prof::ledger::validate_record(&text).unwrap();
    assert_eq!(rec.cells, 12);
    for artifact in &rec.artifacts {
        assert!(Path::new(artifact).exists(), "footer lists a missing artifact: {artifact}");
    }

    let _ = std::fs::remove_dir_all(&runs);
    let _ = std::fs::remove_dir_all(&out);
}

/// The determinism contract: `--jobs 1` and `--jobs 8` must emit the
/// same event lines (scheduling order may differ internally, but
/// events are recorded on the coordinator in grid order) and
/// bit-identical sweep artifacts — with the progress sink live in
/// both runs.
#[test]
fn event_stream_and_artifacts_are_identical_across_jobs() {
    let (runs1, runs8) = (tmp_dir("det-runs1"), tmp_dir("det-runs8"));
    let (out1, out8) = (tmp_dir("det-out1"), tmp_dir("det-out8"));

    let r1 = run_bin(&runs1, &["forwarding", "--jobs", "1", "--out", out1.to_str().unwrap()]);
    let r8 = run_bin(&runs8, &["forwarding", "--jobs", "8", "--out", out8.to_str().unwrap()]);
    assert!(r1.status.success(), "{}", String::from_utf8_lossy(&r1.stderr));
    assert!(r8.status.success(), "{}", String::from_utf8_lossy(&r8.stderr));

    let events = |dir: &Path| -> Vec<String> {
        let record = runscmd::record_files(dir).pop().expect("one record");
        std::fs::read_to_string(record)
            .unwrap()
            .lines()
            .filter(|l| l.contains("\"record\":\"event\""))
            .map(str::to_string)
            .collect()
    };
    let (e1, e8) = (events(&runs1), events(&runs8));
    assert_eq!(e1.len(), 12, "{e1:?}");
    assert_eq!(e1, e8, "event streams must not depend on --jobs");

    let mut files: Vec<PathBuf> =
        std::fs::read_dir(out1.join("forwarding")).unwrap().map(|e| e.unwrap().path()).collect();
    files.sort();
    assert!(!files.is_empty());
    for f1 in &files {
        let rel = f1.file_name().unwrap();
        let f8 = out8.join("forwarding").join(rel);
        assert_eq!(
            std::fs::read(f1).unwrap(),
            std::fs::read(&f8).unwrap(),
            "{} differs between --jobs 1 and --jobs 8",
            rel.to_string_lossy()
        );
    }

    for d in [&runs1, &runs8, &out1, &out8] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// `MS_NO_PROGRESS` / `--quiet` must not change a single artifact
/// byte (the progress line is stderr-only decoration; here stdio is
/// piped anyway, so this also pins the TTY-detection default path).
#[test]
fn quiet_flag_does_not_change_artifacts() {
    let (runs_a, runs_b) = (tmp_dir("quiet-a"), tmp_dir("quiet-b"));
    let (out_a, out_b) = (tmp_dir("quiet-outa"), tmp_dir("quiet-outb"));
    let a = run_bin(&runs_a, &["forwarding", "--jobs", "2", "--out", out_a.to_str().unwrap()]);
    let b = run_bin(
        &runs_b,
        &["forwarding", "--jobs", "2", "--out", out_b.to_str().unwrap(), "--quiet"],
    );
    assert!(a.status.success() && b.status.success());
    assert_eq!(a.stdout.len(), b.stdout.len(), "stdout must not carry progress output");
    let report_a = std::fs::read(out_a.join("forwarding/report.md")).unwrap();
    let report_b = std::fs::read(out_b.join("forwarding/report.md")).unwrap();
    assert_eq!(report_a, report_b);
    for d in [&runs_a, &runs_b, &out_a, &out_b] {
        let _ = std::fs::remove_dir_all(d);
    }
}
