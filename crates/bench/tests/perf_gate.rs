//! End-to-end tests for `run -- perf`: the BENCH document reconciles
//! with wall time, survives its own schema validation, and the
//! `--baseline` regression gate fails the process on an injected 10x
//! phase slowdown.

use std::path::{Path, PathBuf};
use std::process::Command;

use ms_bench::perfcmd::{self, PerfOptions};
use ms_prof::jsonv::{self, Value};

const SMOKE: PerfOptions =
    PerfOptions { reps: 2, insts: 2_000, engine: ms_bench::sweeps::Engine::Batch };

#[test]
fn perf_doc_reconciles_and_validates() {
    let doc = perfcmd::run_perf(&SMOKE);
    // Every span ran inside the timed region, so the wall time charged
    // to top-level spans can never exceed the end-to-end wall time.
    assert!(
        doc.top_level_ns <= doc.total_ns,
        "span total {} ns exceeds end-to-end wall time {} ns",
        doc.top_level_ns,
        doc.total_ns
    );
    let parsed = jsonv::parse(&doc.json).expect("perf doc parses");
    assert_eq!(parsed.get("schema_version").unwrap().as_u64(), Some(1));
    perfcmd::validate(&parsed).expect("perf doc validates against its own schema");
    // The pipeline phases the library crates instrument all appear.
    let phases: Vec<&str> = parsed
        .get("phases")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|p| p.get("phase").unwrap().as_str().unwrap())
        .collect();
    for expected in ["workloads.build", "select", "trace.generate", "trace.split", "sim.run"] {
        assert!(phases.contains(&expected), "phase `{expected}` missing from {phases:?}");
    }
    // The Chrome view holds one slice per cell span at minimum.
    assert!(doc.chrome.starts_with("{\"traceEvents\":["));
    assert!(doc.chrome.contains("\"name\":\"cell:compress-cf\""));
}

/// Divides every `total_ns` / `top_level_ns` / `median_ns` field in the
/// document by 10 — fabricating a baseline 10x faster than reality.
fn speed_up_tenfold(v: &mut Value) {
    match v {
        Value::Obj(fields) => {
            for (key, val) in fields {
                if matches!(key.as_str(), "total_ns" | "top_level_ns" | "median_ns") {
                    if let Value::Num(n) = val {
                        *n = (*n / 10.0).floor();
                    }
                }
                speed_up_tenfold(val);
            }
        }
        Value::Arr(items) => items.iter_mut().for_each(speed_up_tenfold),
        _ => {}
    }
}

fn run_bin(args: &[&str]) -> std::process::Output {
    // Route the invocation's run record into the scratch area: without
    // this the ledger would land in target/experiments/runs relative to
    // the test's cwd, polluting the crate directory.
    let runs = std::env::temp_dir().join(format!("ms-perf-gate-runs-{}", std::process::id()));
    Command::new(env!("CARGO_BIN_EXE_run"))
        .env("MS_RUNS_DIR", &runs)
        .args(args)
        .output()
        .expect("spawn run binary")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-perf-gate-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn path_str(p: &Path) -> &str {
    p.to_str().unwrap()
}

#[test]
fn baseline_gate_fails_on_injected_slowdown() {
    let dir = tmp_dir("gate");
    let base = dir.join("BENCH_base.json");
    let out = dir.join("exp");

    // A real measurement first.
    let status = run_bin(&[
        "perf",
        "--reps",
        "1",
        "--insts",
        "2000",
        "--bench-out",
        path_str(&base),
        "--out",
        path_str(&out),
    ]);
    assert!(status.status.success(), "perf failed: {}", String::from_utf8_lossy(&status.stderr));
    assert!(out.join("perf").join("pipeline.chrome.json").exists(), "missing Chrome view");

    // The real document passes validation...
    let validate = run_bin(&["perf-validate", path_str(&base)]);
    assert!(validate.status.success(), "{}", String::from_utf8_lossy(&validate.stderr));
    // ...and a corrupted one does not.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{\"schema_version\":1}").unwrap();
    assert!(!run_bin(&["perf-validate", path_str(&garbage)]).status.success());

    // Fabricate a 10x-faster baseline; rerunning against it must fail.
    let mut doc = jsonv::parse(&std::fs::read_to_string(&base).unwrap()).unwrap();
    speed_up_tenfold(&mut doc);
    let fake = dir.join("BENCH_fake.json");
    std::fs::write(&fake, doc.to_json()).unwrap();
    let gated = run_bin(&[
        "perf",
        "--reps",
        "1",
        "--insts",
        "2000",
        "--bench-out",
        path_str(&dir.join("BENCH_cur.json")),
        "--out",
        path_str(&out),
        "--baseline",
        path_str(&fake),
        "--noise-floor-ns",
        "1000",
    ]);
    assert!(!gated.status.success(), "a 10x slowdown must fail the gate");
    let stderr = String::from_utf8_lossy(&gated.stderr);
    assert!(stderr.contains("regressed"), "stderr should name the regression: {stderr}");

    // Against its own (unscaled) measurement with a generous threshold
    // the gate passes — the failure above is the injected slowdown, not
    // run-to-run noise.
    let cur = jsonv::parse(&std::fs::read_to_string(dir.join("BENCH_cur.json")).unwrap()).unwrap();
    let self_cmp = perfcmd::compare(&cur, &cur, 30.0, 1).expect("self-compare");
    assert!(self_cmp.regressions.is_empty(), "a document never regresses against itself");

    let _ = std::fs::remove_dir_all(&dir);
}
