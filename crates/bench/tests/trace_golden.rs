//! Pins the event-trace pipeline: the JSONL trace for one fixed cell
//! (golden file), determinism of every trace artifact under worker-thread
//! parallelism, and the reconciliation acceptance criterion — the
//! attribution tables' totals are the run's `SimStats` counters.
//!
//! When a deliberate event or schema change alters the trace, regenerate
//! the golden file with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test trace_golden
//! ```
//!
//! and document the change in `docs/TRACING.md` (bump
//! `ms_sim::TRACE_SCHEMA_VERSION` if event shapes changed).

use std::path::PathBuf;

use ms_bench::harness::run_parallel;
use ms_bench::tracecmd::{trace_selection, TraceArtifacts};
use ms_bench::Heuristic;
use ms_sim::{SimConfig, TRACE_SCHEMA_VERSION};
use ms_tasksel::Selection;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compress-cf-4pu-trace.jsonl")
}

fn select(bench: &str, h: Heuristic) -> Selection {
    let program = ms_workloads::by_name(bench).unwrap().build();
    h.selector(4).select(&ms_analysis::ProgramContext::new(program))
}

fn golden_run() -> TraceArtifacts {
    let sel = select("compress", Heuristic::ControlFlow);
    trace_selection(&sel, SimConfig::four_pu(), 2_000, ms_bench::DEFAULT_SEED)
}

#[test]
fn golden_jsonl_trace_is_stable() {
    let got = golden_run().jsonl;
    let path = golden_path();
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "event trace changed; if intentional, re-bless with MS_BLESS=1 and \
         update docs/TRACING.md (TRACE_SCHEMA_VERSION is {TRACE_SCHEMA_VERSION})"
    );
}

/// The acceptance criterion for `run -- trace`: the printed attribution
/// tables' per-cause totals are exactly the run's `SimStats` counters.
#[test]
fn attribution_totals_are_the_stats_counters() {
    let art = golden_run();
    let (stats, agg) = (&art.stats, &art.agg);
    assert_eq!(agg.ctrl_squashes, stats.ctrl_squashes);
    assert_eq!(agg.mem_squashes + agg.cascade_squashes, stats.violations);
    assert_eq!(agg.fwd_stall_cycles, stats.fwd_stall_cycles);
    assert_eq!(agg.idle_cycles, stats.pu_idle_cycles);
    // And the rendered text carries those same totals.
    assert!(art.tables.contains(&format!(
        "squash attribution (totals: ctrl {}, mem {}, cascade {}):",
        agg.ctrl_squashes, agg.mem_squashes, agg.cascade_squashes
    )));
    assert!(art.tables.contains(&format!(
        "stall attribution (total fwd stall cycles: {}):",
        stats.fwd_stall_cycles
    )));
    assert!(art
        .tables
        .contains(&format!("per-PU occupancy (idle total: {} PU-cycles):", stats.pu_idle_cycles)));
}

/// Every trace artifact — JSONL, Chrome JSON, tables — is byte-identical
/// whether the surrounding grid runs on 1 worker or 4.
#[test]
fn trace_artifacts_are_parallel_deterministic() {
    let grid: Vec<(&str, Heuristic)> = vec![
        ("compress", Heuristic::ControlFlow),
        ("go", Heuristic::DataDependence),
        ("li", Heuristic::BasicBlock),
        ("tomcatv", Heuristic::ControlFlow),
    ];
    let run = |&(bench, h): &(&str, Heuristic), _i: usize| {
        let sel = select(bench, h);
        let art = trace_selection(&sel, SimConfig::four_pu(), 3_000, ms_bench::DEFAULT_SEED);
        (art.jsonl, art.chrome, art.tables)
    };
    let serial = run_parallel(1, grid.clone(), run);
    let parallel = run_parallel(4, grid, run);
    assert_eq!(serial, parallel, "parallelism must not change any byte of any trace artifact");
}
