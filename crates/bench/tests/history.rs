//! End-to-end tests for `run -- perf-history`: a golden trend table
//! over synthetic multi-baseline fixtures, artifact emission, the
//! validator dispatch, and — the core promise — a process-level proof
//! that cumulative drift below the per-step threshold still fails the
//! trajectory gate.
//!
//! The golden file regenerates with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test history
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

use ms_bench::historycmd::{BaselineEntry, History};
use ms_bench::json::JsonObj;

/// A synthetic but schema-complete `BENCH_*.json` document: validates
/// under `perfcmd::validate`, so the history loader accepts it.
fn bench_doc(git: &str, total_ns: u64, sim_ns: u64, trace_ns: u64) -> String {
    let phase = |name: &str, ns: u64| {
        let mut o = JsonObj::new();
        o.str("phase", name).num_u64("median_ns", ns).num_u64("count", 6).num_u64("items", 100);
        o.finish()
    };
    let mut machine = JsonObj::new();
    machine.str("os", "testos").str("arch", "testarch").num_u64("cpus", 2);
    let mut cell = JsonObj::new();
    cell.str("id", "compress-cf").num_u64("median_ns", total_ns / 6);
    let mut o = JsonObj::new();
    o.num_u64("schema_version", 1)
        .str("format", "ms-perf")
        .str("git", git)
        .raw("machine", &machine.finish())
        .num_u64("reps", 5)
        .num_u64("insts", 60_000)
        .num_u64("total_ns", total_ns)
        .num_u64("top_level_ns", total_ns - 1_000)
        .num_f64("cells_per_s", 6.0 / (total_ns as f64 / 1e9))
        .raw("cells", &format!("[{}]", cell.finish()))
        .raw(
            "phases",
            &format!(
                "[{},{},{}]",
                phase("sim.run", sim_ns),
                phase("tiny.phase", 1_000),
                phase("trace.generate", trace_ns)
            ),
        )
        .raw("registry", "{\"counters\":[],\"gauges\":[],\"hists\":[]}");
    o.finish()
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-history-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_bin(args: &[&str]) -> std::process::Output {
    // Route the invocation's run record into the scratch area: without
    // this the ledger would land in target/experiments/runs relative to
    // the test's cwd, polluting the crate directory.
    let runs = std::env::temp_dir().join(format!("ms-history-runs-{}", std::process::id()));
    Command::new(env!("CARGO_BIN_EXE_run"))
        .env("MS_RUNS_DIR", &runs)
        .args(args)
        .output()
        .expect("spawn run binary")
}

fn path_str(p: &Path) -> &str {
    p.to_str().unwrap()
}

/// Three baselines drifting +20% then +25% on `sim.run` and the total:
/// every pairwise step clears a 30% gate, the ~50% cumulative drift
/// must not.
fn write_drifting_fixtures(dir: &Path) {
    // Fabricated hashes never resolve to commits, so ordering falls to
    // the lexicographic git tie-break — names encode the order.
    for (git, total, sim) in [
        ("aaa0001", 10_000_000, 8_000_000),
        ("bbb0002", 12_000_000, 9_600_000),
        ("ccc0003", 15_000_000, 12_000_000),
    ] {
        std::fs::write(dir.join(format!("BENCH_{git}.json")), bench_doc(git, total, sim, 500_000))
            .unwrap();
    }
}

#[test]
fn injected_cumulative_drift_fails_the_process_and_emits_artifacts() {
    let dir = tmp_dir("drift");
    let out = dir.join("exp");
    write_drifting_fixtures(&dir);

    let gated = run_bin(&["perf-history", path_str(&dir), "--out", path_str(&out)]);
    assert!(
        !gated.status.success(),
        "sub-threshold steps with >30% cumulative drift must fail the gate"
    );
    let stderr = String::from_utf8_lossy(&gated.stderr);
    assert!(stderr.contains("drifted"), "stderr should explain the drift: {stderr}");
    assert!(stderr.contains("sim.run"), "stderr should name the phase: {stderr}");

    // The artifacts are still written (the dashboard is how you debug
    // the failure), and history.json passes the validator dispatch.
    let json = out.join("perf").join("history.json");
    let html = out.join("perf").join("history.html");
    assert!(json.exists(), "history.json must be emitted even when gating");
    assert!(html.exists(), "history.html must be emitted even when gating");
    let validate = run_bin(&["perf-validate", path_str(&json)]);
    assert!(validate.status.success(), "{}", String::from_utf8_lossy(&validate.stderr));
    assert!(String::from_utf8_lossy(&validate.stdout).contains("ms-perf-history"));

    // --no-gate: same report, successful exit.
    let ungated = run_bin(&["perf-history", path_str(&dir), "--out", path_str(&out), "--no-gate"]);
    assert!(ungated.status.success(), "--no-gate must report without failing");

    // A wider threshold passes outright.
    let wide =
        run_bin(&["perf-history", path_str(&dir), "--out", path_str(&out), "--max-regress", "60"]);
    assert!(wide.status.success(), "{}", String::from_utf8_lossy(&wide.stderr));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_baseline_is_a_hard_error_not_a_skip() {
    let dir = tmp_dir("invalid");
    write_drifting_fixtures(&dir);
    // One more baseline violating the top_level_ns <= total_ns
    // invariant: aggregation must reject the trajectory, not skip it.
    let broken = bench_doc("ddd0004", 10_000_000, 8_000_000, 500_000)
        .replace("\"top_level_ns\":9999000", "\"top_level_ns\":99999999");
    assert!(broken.contains("99999999"), "replacement must hit");
    std::fs::write(dir.join("BENCH_ddd0004.json"), broken).unwrap();

    let out = run_bin(&["perf-history", path_str(&dir), "--out", path_str(&dir.join("exp"))]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("BENCH_ddd0004.json") && stderr.contains("top_level_ns"),
        "the error must name the offending file and invariant: {stderr}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trend_table_is_golden() {
    // In-memory entries with pinned timestamps: the rendered trend
    // table (sparklines, deltas, verdicts) is a reviewed artifact.
    let entry = |git: &str, ts: u64, total_ns: u64, sim_ns: u64| BaselineEntry {
        file: format!("BENCH_{git}.json"),
        git: git.to_string(),
        timestamp: Some(ts),
        os: "testos".to_string(),
        arch: "testarch".to_string(),
        cpus: 2,
        reps: 5,
        insts: 60_000,
        total_ns,
        top_level_ns: total_ns - 1_000,
        cells_per_s: 6.0 / (total_ns as f64 / 1e9),
        phases: vec![
            ("sim.run".to_string(), sim_ns),
            ("tiny.phase".to_string(), 1_000),
            ("trace.generate".to_string(), 500_000),
        ],
        cells: vec![("compress-cf".to_string(), total_ns / 6)],
    };
    let history = History {
        entries: vec![
            entry("aaa0001", 1_754_006_400, 10_000_000, 8_000_000),
            entry("bbb0002", 1_754_611_200, 9_000_000, 7_000_000),
            entry("ccc0003", 1_755_216_000, 13_000_000, 10_500_000),
        ],
        annotations: vec![None, None, None],
    };
    let got = history.trend_table(30.0, 200_000);

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/history_trend.txt");
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "trend table changed; if intentional, re-bless with MS_BLESS=1 and \
         update the column glossary in docs/PERF-HISTORY.md"
    );
}

#[test]
fn tie_broken_ordering_is_stable_in_the_emitted_json() {
    // Two baselines sharing one commit timestamp (fabricated hashes in
    // a non-repo temp dir resolve to no timestamp at all — the
    // all-None case) order by git hash wherever they are rendered.
    let dir = tmp_dir("tie");
    std::fs::write(dir.join("BENCH_zzz.json"), bench_doc("zzz", 10_000_000, 8_000_000, 500_000))
        .unwrap();
    std::fs::write(dir.join("BENCH_aaa.json"), bench_doc("aaa", 11_000_000, 8_800_000, 500_000))
        .unwrap();
    let out = dir.join("exp");
    let run = run_bin(&["perf-history", path_str(&dir), "--out", path_str(&out), "--no-gate"]);
    assert!(run.status.success(), "{}", String::from_utf8_lossy(&run.stderr));
    let json = std::fs::read_to_string(out.join("perf").join("history.json")).unwrap();
    let a = json.find("\"git\":\"aaa\"").expect("aaa present");
    let z = json.find("\"git\":\"zzz\"").expect("zzz present");
    assert!(a < z, "hash tie-break must order aaa before zzz in history.json");
    let _ = std::fs::remove_dir_all(&dir);
}
