//! Pins the experiment metrics pipeline: the per-cell JSON artifact for
//! one fixed cell (golden file), and serial/parallel bit-identity for a
//! small sub-grid.
//!
//! When a deliberate metrics or schema change alters the artifact,
//! regenerate the golden file with:
//!
//! ```text
//! MS_BLESS=1 cargo test -p ms-bench --test metrics_golden
//! ```
//!
//! and document the change in `EXPERIMENTS.md` (bump
//! `ms_bench::sweeps::SCHEMA_VERSION` if fields changed shape).

use std::path::PathBuf;

use ms_bench::harness::run_parallel;
use ms_bench::sweeps::{cell_json, CellJob, SCHEMA_VERSION};
use ms_bench::Heuristic;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/compress-cf-4pu.json")
}

fn golden_job() -> CellJob {
    CellJob { insts: 20_000, ..CellJob::new("compress", Heuristic::ControlFlow) }
}

#[test]
fn golden_cell_artifact_is_stable() {
    let job = golden_job();
    let got = cell_json("golden", "compress-cf-4pu", &job, &job.run()) + "\n";
    let path = golden_path();
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write golden file");
        return;
    }
    let want = std::fs::read_to_string(&path).expect("golden file exists (MS_BLESS=1 to create)");
    assert_eq!(
        got, want,
        "cell metrics JSON changed; if intentional, re-bless with MS_BLESS=1 \
         and update EXPERIMENTS.md (schema_version is {SCHEMA_VERSION})"
    );
}

#[test]
fn parallel_and_serial_grids_are_bit_identical() {
    // A 3×3 sub-grid: three benchmarks × three heuristics.
    let mut grid = Vec::new();
    for bench in ["compress", "go", "tomcatv"] {
        for h in [Heuristic::BasicBlock, Heuristic::ControlFlow, Heuristic::DataDependence] {
            grid.push(CellJob { insts: 5_000, ..CellJob::new(bench, h) });
        }
    }
    let serial: Vec<String> = run_parallel(1, grid.clone(), |job, i| {
        cell_json("determinism", &format!("cell-{i}"), job, &job.run())
    });
    let parallel: Vec<String> = run_parallel(4, grid, |job, i| {
        cell_json("determinism", &format!("cell-{i}"), job, &job.run())
    });
    assert_eq!(serial, parallel, "parallel execution must not change any byte of any artifact");
}
