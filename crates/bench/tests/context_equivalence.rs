//! The shared-context contract of the pipelined sweep scheduler: a cell
//! run against a warmed, shared [`ProgramContext`] must produce JSON
//! byte-identical to a from-scratch standalone run — the cache may only
//! ever serve values a fresh computation would also have produced — and
//! a whole sweep's artifacts must not depend on `--jobs`.

use ms_analysis::ProgramContext;
use ms_bench::progress::SweepObserver;
use ms_bench::sweeps::{cell_json, run_sweep, CellJob, Engine, SweepSpec};
use ms_bench::Heuristic;

/// Every (benchmark, heuristic, threshold) shape the grids use, run both
/// ways: standalone (cold per-cell context, the pre-scheduler behavior)
/// and against one shared warmed context per benchmark.
#[test]
fn shared_context_cells_match_standalone_cells_byte_for_byte() {
    for bench in ["compress", "li", "tomcatv"] {
        let ctx = CellJob::new(bench, Heuristic::BasicBlock).context();
        ctx.warm(true);
        let jobs = [
            CellJob { insts: 4_000, ..CellJob::new(bench, Heuristic::BasicBlock) },
            CellJob { insts: 4_000, ..CellJob::new(bench, Heuristic::ControlFlow) },
            CellJob { insts: 4_000, ..CellJob::new(bench, Heuristic::DataDependence) },
            CellJob {
                insts: 4_000,
                ts_thresh: Some(12.0),
                ..CellJob::new(bench, Heuristic::DataDependence)
            },
        ];
        for (i, job) in jobs.iter().enumerate() {
            let fresh = cell_json("equiv", &format!("cell-{i}"), job, &job.run());
            let shared = cell_json("equiv", &format!("cell-{i}"), job, &job.run_in(&ctx));
            assert_eq!(
                fresh, shared,
                "{bench} cell {i}: shared-context run diverged from standalone run"
            );
        }
        assert!(ctx.cache_stats().hits > 0, "{bench}: shared context was never actually hit");
    }
}

/// An if-converted cell builds a *different* program, so it must not be
/// served from the unconverted benchmark's context; its standalone run
/// stays the reference.
#[test]
fn if_converted_cells_use_their_own_context() {
    let plain = CellJob { insts: 4_000, ..CellJob::new("compress", Heuristic::ControlFlow) };
    let conv = CellJob { if_convert_arms: Some(8), ..plain.clone() };
    let plain_out = cell_json("equiv", "plain", &plain, &plain.run());
    let conv_out = cell_json("equiv", "conv", &conv, &conv.run_in(&conv.context()));
    assert_ne!(plain_out, conv_out, "if-conversion must change the artifact");
    // And the shared-context path agrees with the standalone path.
    assert_eq!(conv_out, cell_json("equiv", "conv", &conv, &conv.run()));
}

/// One real sweep, run end-to-end at `--jobs 1` and `--jobs 4`: every
/// artifact file must be bit-identical.
#[test]
fn sweep_artifacts_are_bit_identical_across_jobs() {
    let root1 = tempdir("ctx-equiv-j1");
    let root4 = tempdir("ctx-equiv-j4");
    run_sweep(SweepSpec::Targets, 1, &root1, &SweepObserver::silent(), Engine::default())
        .expect("serial sweep runs");
    run_sweep(SweepSpec::Targets, 4, &root4, &SweepObserver::silent(), Engine::default())
        .expect("parallel sweep runs");

    let files1 = artifact_files(&root1);
    let files4 = artifact_files(&root4);
    assert_eq!(files1, files4, "artifact file sets differ between --jobs 1 and --jobs 4");
    assert!(!files1.is_empty(), "sweep produced no artifacts");
    for rel in &files1 {
        let a = std::fs::read(root1.join(rel)).unwrap();
        let b = std::fs::read(root4.join(rel)).unwrap();
        assert_eq!(a, b, "{rel}: artifact differs between --jobs 1 and --jobs 4");
    }
    std::fs::remove_dir_all(&root1).ok();
    std::fs::remove_dir_all(&root4).ok();
}

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ms-bench-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn artifact_files(root: &std::path::Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                out.push(path.strip_prefix(root).unwrap().to_string_lossy().into_owned());
            }
        }
    }
    out.sort();
    out
}
