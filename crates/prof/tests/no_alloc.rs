//! Pins the NullProfiler guarantee: with no collector enabled, the
//! span and registry entry points perform **zero heap allocations** —
//! instrumented library hot paths (the simulation loop included) pay
//! only a thread-local check. Mirrors the `NullSink` guarantee from the
//! sim crate's event tracing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The allocation counter is process-global, so tests that measure a
/// quiet window must not overlap tests that allocate on purpose (the
/// harness runs tests on parallel threads). Every test below holds
/// this lock around its measured section.
static MEASURE: Mutex<()> = Mutex::new(());

/// The system allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Takes the measurement lock even if a sibling test panicked while
/// holding it — a poisoned gate would turn one failure into three.
fn gate() -> MutexGuard<'static, ()> {
    MEASURE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The cleanest (minimum) allocation count over a few measured windows.
/// The counter is process-global and the harness runs other tests on
/// sibling threads whose bookkeeping (thread spawn, result channels)
/// allocates outside [`MEASURE`], so a single window can pick up stray
/// counts. One quiet window proves the measured path itself is
/// allocation-free; a real hot-path allocation shows up in *every*
/// window, ten-thousand-fold, and no number of retries can hide it.
fn min_allocs_over_windows(f: impl Fn()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocs();
        f();
        best = best.min(allocs() - before);
        if best == 0 {
            break;
        }
    }
    best
}

#[test]
fn disabled_profiling_allocates_nothing() {
    // Touch the thread-local slots once so lazy TLS initialisation is
    // not charged to the measured loop.
    assert!(!ms_prof::is_enabled());
    drop(ms_prof::span("warmup"));
    ms_prof::counter_add("warmup", 1);
    ms_prof::hist_record("warmup", 1);
    ms_prof::gauge_set("warmup", 1.0);

    let _gate = gate();
    let counted = min_allocs_over_windows(|| {
        for i in 0..10_000u64 {
            let s = ms_prof::span("hot");
            s.add_items(i);
            ms_prof::counter_add("hot.counter", i);
            ms_prof::hist_record("hot.hist", i);
            ms_prof::gauge_set("hot.gauge", i as f64);
            drop(s);
            drop(ms_prof::NullProfiler.span("hot"));
        }
    });
    assert_eq!(
        counted, 0,
        "disabled span/registry calls must not allocate (NullProfiler guarantee)"
    );
}

#[test]
fn disabled_progress_sink_allocates_nothing() {
    // The run-ledger ProgressSink mirrors the NullProfiler contract:
    // the disabled sink (what plain `run_parallel` callers get) must
    // cost one branch per call — no atomics touched, no allocation.
    let sink = ms_prof::ledger::ProgressSink::disabled();
    assert!(!sink.is_enabled());
    sink.add_queued(1); // touch once before measuring

    let _gate = gate();
    let counted = min_allocs_over_windows(|| {
        for i in 0..10_000u64 {
            sink.add_queued(1);
            sink.cell_started();
            sink.warm_hit();
            sink.worker_busy(0, i, 1);
            sink.cell_finished();
        }
    });
    assert_eq!(
        counted, 0,
        "disabled ProgressSink calls must not allocate (ledger zero-overhead guarantee)"
    );
}

#[test]
fn enabled_profiling_does_allocate_so_the_counter_works() {
    // Sanity-check the measurement itself: the enabled path must be
    // visible to the counting allocator, otherwise the test above
    // proves nothing.
    let _gate = gate();
    ms_prof::enable();
    let before = allocs();
    drop(ms_prof::span("live"));
    let after = allocs();
    assert!(after > before, "enabled spans allocate; counter saw {}", after - before);
    ms_prof::disable();
}
