//! Pins the NullProfiler guarantee: with no collector enabled, the
//! span and registry entry points perform **zero heap allocations** —
//! instrumented library hot paths (the simulation loop included) pay
//! only a thread-local check. Mirrors the `NullSink` guarantee from the
//! sim crate's event tracing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// The system allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to the system allocator; the counter is a
// relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_profiling_allocates_nothing() {
    // Touch the thread-local slots once so lazy TLS initialisation is
    // not charged to the measured loop.
    assert!(!ms_prof::is_enabled());
    drop(ms_prof::span("warmup"));
    ms_prof::counter_add("warmup", 1);
    ms_prof::hist_record("warmup", 1);
    ms_prof::gauge_set("warmup", 1.0);

    let before = allocs();
    for i in 0..10_000u64 {
        let s = ms_prof::span("hot");
        s.add_items(i);
        ms_prof::counter_add("hot.counter", i);
        ms_prof::hist_record("hot.hist", i);
        ms_prof::gauge_set("hot.gauge", i as f64);
        drop(s);
        drop(ms_prof::NullProfiler.span("hot"));
    }
    let after = allocs();
    assert_eq!(
        after - before,
        0,
        "disabled span/registry calls must not allocate (NullProfiler guarantee)"
    );
}

#[test]
fn enabled_profiling_does_allocate_so_the_counter_works() {
    // Sanity-check the measurement itself: the enabled path must be
    // visible to the counting allocator, otherwise the test above
    // proves nothing.
    ms_prof::enable();
    let before = allocs();
    drop(ms_prof::span("live"));
    let after = allocs();
    assert!(after > before, "enabled spans allocate; counter saw {}", after - before);
    ms_prof::disable();
}
