//! The run ledger: a schema-versioned, append-only record of every
//! `run` driver invocation.
//!
//! [`crate::jsonv`] reads artifacts back; this module writes the one
//! artifact that describes the *invocation itself*. A [`RunLedger`]
//! opens one JSONL file per run — `<runs dir>/<ts>-<git>-<cmd>.jsonl` —
//! and records three line kinds:
//!
//! * a **header** (written immediately at open, so an interrupted run
//!   still leaves a visible stub): schema/format tags, the run id,
//!   unix start time, git short hash, subcommand, raw argv, parsed
//!   parameters, and the machine fingerprint;
//! * zero or more **events** (buffered, flushed at close): structured
//!   progress facts — one per sweep cell, perf baseline, fuzz failure…
//!   Events deliberately carry **no wall-clock timestamps**, so the
//!   event section of a record is byte-identical across `--jobs`
//!   settings (timing lives in the header/footer and the progress
//!   counters);
//! * a **footer**: outcome, exit code, duration, event/cell counts,
//!   artifact paths, and a [`ProgressSnapshot`] of the live counters.
//!
//! A record with a header but no footer is an interrupted or crashed
//! run — [`parse_record`] surfaces it, [`validate_record`] rejects it.
//! Validation also reconciles the footer's counts against the actual
//! event lines, so a record whose cell count disagrees with its events
//! can never validate.
//!
//! The [`ProgressSink`] half is the lock-free instrumentation the
//! parallel sweep scheduler feeds: atomic cells-queued / started /
//! finished / context-cache warm-hit counters plus per-worker busy
//! tallies. A disabled sink ([`ProgressSink::disabled`]) costs one
//! branch per call and **allocates nothing** — pinned by the counting
//! global allocator in `tests/no_alloc.rs`, mirroring the
//! [`crate::NullProfiler`] guarantee.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::jsonv::{self, Value};

/// Version of the run-ledger JSONL schema (bump on any field change;
/// documented field-by-field in `docs/OBSERVABILITY.md`).
///
/// v2 added the `cache_hits` / `cache_misses` counters to the footer's
/// progress snapshot (the sweep service's content-addressed cell
/// cache). Readers accept v1 records too — old records validate, minus
/// the fields their era did not have.
pub const LEDGER_SCHEMA_VERSION: u32 = 2;

/// The oldest schema version [`parse_record`] / [`validate_record`]
/// still accept.
pub const LEDGER_MIN_SCHEMA_VERSION: u32 = 1;

/// The `format` tag every ledger header carries, distinguishing run
/// records from the repository's other JSON artifacts.
pub const LEDGER_FORMAT: &str = "ms-run-ledger";

/// Everything a run record's header needs besides the clock: the
/// subcommand, the raw argument vector, the git short hash, and the
/// parsed parameters worth querying later (strategy, jobs, seeds, …).
#[derive(Debug, Clone, Default)]
pub struct RunMeta {
    /// The driver subcommand (`sweeps`, `perf`, `fuzz`, …) — also the
    /// last component of the record's file name.
    pub cmd: String,
    /// The raw argument vector, exactly as invoked (subcommand
    /// included, binary name excluded).
    pub argv: Vec<String>,
    /// Git short hash of the checkout (`nogit` outside one).
    pub git: String,
    /// Parsed parameters as ordered `(key, value)` pairs — the
    /// SimConfig/policy fingerprint of the invocation.
    pub params: Vec<(String, String)>,
}

/// A point-in-time copy of a [`ProgressSink`]'s counters, embedded in
/// the record footer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgressSnapshot {
    /// Cells enqueued onto the scheduler.
    pub queued: u64,
    /// Cells a worker has picked up.
    pub started: u64,
    /// Cells fully simulated.
    pub finished: u64,
    /// Cells that found their shared analysis context already warmed.
    pub warm_hits: u64,
    /// Cells served verbatim from the content-addressed cell cache
    /// (no simulation ran).
    pub cache_hits: u64,
    /// Cells that missed the cell cache and were simulated (zero when
    /// no cache was configured).
    pub cache_misses: u64,
    /// Per-worker `(busy_ns, items)` tallies, indexed by worker slot.
    pub workers: Vec<(u64, u64)>,
}

/// One per-worker tally: wall time spent inside work items, and how
/// many items the worker completed.
#[derive(Debug, Default)]
struct WorkerTally {
    busy_ns: AtomicU64,
    items: AtomicU64,
}

/// Lock-free progress instrumentation for the parallel sweep
/// scheduler. All counters are relaxed atomics: they feed a progress
/// line and a footer snapshot, never control flow.
///
/// A disabled sink short-circuits every method on a single branch and
/// performs no atomic operation and no allocation.
#[derive(Debug)]
pub struct ProgressSink {
    enabled: bool,
    queued: AtomicU64,
    started: AtomicU64,
    finished: AtomicU64,
    warm_hits: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    workers: Vec<WorkerTally>,
}

impl ProgressSink {
    /// An enabled sink with `workers` per-worker tally slots.
    pub fn new(workers: usize) -> ProgressSink {
        ProgressSink {
            enabled: true,
            queued: AtomicU64::new(0),
            started: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            workers: std::iter::repeat_with(WorkerTally::default).take(workers).collect(),
        }
    }

    /// The no-op sink: every method returns after one branch. `const`,
    /// so a `static` disabled sink costs nothing at startup either.
    pub const fn disabled() -> ProgressSink {
        ProgressSink {
            enabled: false,
            queued: AtomicU64::new(0),
            started: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            warm_hits: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            workers: Vec::new(),
        }
    }

    /// Whether this sink records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Notes `n` cells entering the scheduler's queue.
    pub fn add_queued(&self, n: u64) {
        if self.enabled {
            self.queued.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Notes one cell picked up by a worker.
    pub fn cell_started(&self) {
        if self.enabled {
            self.started.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notes one cell fully simulated.
    pub fn cell_finished(&self) {
        if self.enabled {
            self.finished.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notes one cell that found its shared analysis context already
    /// warmed by the pipeline's first stage.
    pub fn warm_hit(&self) {
        if self.enabled {
            self.warm_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notes one cell served whole from the content-addressed cell
    /// cache (artifact reproduced, no simulation).
    pub fn cache_hit(&self) {
        if self.enabled {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Notes one cell that missed the cell cache and had to simulate.
    pub fn cache_miss(&self) {
        if self.enabled {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charges `busy_ns` of work-item wall time (and `items` completed
    /// items) to worker slot `worker`. Out-of-range slots are ignored.
    pub fn worker_busy(&self, worker: usize, busy_ns: u64, items: u64) {
        if !self.enabled {
            return;
        }
        if let Some(t) = self.workers.get(worker) {
            t.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            t.items.fetch_add(items, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            queued: self.queued.load(Ordering::Relaxed),
            started: self.started.load(Ordering::Relaxed),
            finished: self.finished.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            workers: self
                .workers
                .iter()
                .map(|t| (t.busy_ns.load(Ordering::Relaxed), t.items.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// A run record being written: header on open, events buffered, footer
/// on [`RunLedger::close`].
#[derive(Debug)]
pub struct RunLedger {
    path: PathBuf,
    id: String,
    start: Instant,
    events: Vec<String>,
    artifacts: Vec<String>,
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn sanitize(word: &str) -> String {
    let mut out: String =
        word.chars().map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' }).collect();
    if out.is_empty() {
        out.push_str("run");
    }
    out
}

impl RunLedger {
    /// Opens a record under `dir` and writes its header line
    /// immediately, so even a crashed run leaves a header-only stub.
    /// The file is `<ts>-<git>-<cmd>.jsonl`; an existing file with the
    /// same stamp gets a `-2`, `-3`, … suffix.
    pub fn open(dir: &Path, meta: &RunMeta) -> std::io::Result<RunLedger> {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Self::open_at(dir, meta, unix)
    }

    /// [`RunLedger::open`] with an explicit unix start time (tests pin
    /// the stamp; production callers use `open`).
    pub fn open_at(dir: &Path, meta: &RunMeta, unix: u64) -> std::io::Result<RunLedger> {
        std::fs::create_dir_all(dir)?;
        let base = format!("{}-{}-{}", utc_stamp(unix), sanitize(&meta.git), sanitize(&meta.cmd));
        let mut id = base.clone();
        let mut n = 1u32;
        while dir.join(format!("{id}.jsonl")).exists() {
            n += 1;
            id = format!("{base}-{n}");
        }
        let path = dir.join(format!("{id}.jsonl"));

        let machine = obj(vec![
            ("os", Value::Str(std::env::consts::OS.to_string())),
            ("arch", Value::Str(std::env::consts::ARCH.to_string())),
            (
                "cpus",
                Value::Num(
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) as f64
                ),
            ),
        ]);
        let header = obj(vec![
            ("schema_version", Value::Num(LEDGER_SCHEMA_VERSION as f64)),
            ("format", Value::Str(LEDGER_FORMAT.to_string())),
            ("record", Value::Str("header".to_string())),
            ("id", Value::Str(id.clone())),
            ("ts", Value::Num(unix as f64)),
            ("git", Value::Str(meta.git.clone())),
            ("cmd", Value::Str(meta.cmd.clone())),
            ("argv", Value::Arr(meta.argv.iter().map(|a| Value::Str(a.clone())).collect())),
            (
                "params",
                Value::Obj(
                    meta.params.iter().map(|(k, v)| (k.clone(), Value::Str(v.clone()))).collect(),
                ),
            ),
            ("machine", machine),
        ]);
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{}", header.to_json())?;
        Ok(RunLedger { path, id, start: Instant::now(), events: Vec::new(), artifacts: Vec::new() })
    }

    /// The record's id (file stem): `<ts>-<git>-<cmd>`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The record's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Buffers one event line. `kind` becomes the `event` field;
    /// `fields` follow in order. Events carry no timestamps — see the
    /// module docs for why.
    pub fn event(&mut self, kind: &str, fields: Vec<(&str, Value)>) {
        let mut all = vec![
            ("record", Value::Str("event".to_string())),
            ("event", Value::Str(kind.to_string())),
        ];
        all.extend(fields);
        self.events.push(obj(all).to_json());
    }

    /// Notes one emitted artifact path for the footer's manifest.
    pub fn artifact(&mut self, path: &str) {
        self.artifacts.push(path.to_string());
    }

    /// Flushes the buffered events and the footer, consuming the
    /// ledger. Returns the record's path.
    pub fn close(
        self,
        outcome: &str,
        exit_code: i32,
        progress: &ProgressSnapshot,
    ) -> std::io::Result<PathBuf> {
        let cells = self.events.iter().filter(|e| is_cell_event(e)).count();
        let workers = Value::Arr(
            progress
                .workers
                .iter()
                .map(|&(busy_ns, items)| {
                    obj(vec![
                        ("busy_ns", Value::Num(busy_ns as f64)),
                        ("items", Value::Num(items as f64)),
                    ])
                })
                .collect(),
        );
        let footer = obj(vec![
            ("record", Value::Str("footer".to_string())),
            ("outcome", Value::Str(outcome.to_string())),
            ("exit_code", Value::Num(exit_code as f64)),
            ("duration_ns", Value::Num(self.start.elapsed().as_nanos() as f64)),
            ("events", Value::Num(self.events.len() as f64)),
            ("cells", Value::Num(cells as f64)),
            (
                "artifacts",
                Value::Arr(self.artifacts.iter().map(|a| Value::Str(a.clone())).collect()),
            ),
            (
                "progress",
                obj(vec![
                    ("queued", Value::Num(progress.queued as f64)),
                    ("started", Value::Num(progress.started as f64)),
                    ("finished", Value::Num(progress.finished as f64)),
                    ("warm_hits", Value::Num(progress.warm_hits as f64)),
                    ("cache_hits", Value::Num(progress.cache_hits as f64)),
                    ("cache_misses", Value::Num(progress.cache_misses as f64)),
                    ("workers", workers),
                ]),
            ),
        ]);
        let mut body = String::new();
        for e in &self.events {
            body.push_str(e);
            body.push('\n');
        }
        body.push_str(&footer.to_json());
        body.push('\n');
        let mut file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
        file.write_all(body.as_bytes())?;
        Ok(self.path)
    }
}

fn is_cell_event(line: &str) -> bool {
    jsonv::parse(line)
        .ok()
        .and_then(|v| v.get("event").and_then(Value::as_str).map(|e| e == "cell"))
        .unwrap_or(false)
}

// ------------------------------------------------------------- reading

/// One parsed run record, as the `runs` subcommands consume it. A
/// record without a footer (interrupted run) parses with
/// `outcome == None`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The schema version the record was written under (within
    /// [`LEDGER_MIN_SCHEMA_VERSION`]..=[`LEDGER_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The record id (`<ts>-<git>-<cmd>`).
    pub id: String,
    /// Unix start time, seconds.
    pub ts: u64,
    /// Git short hash at invocation.
    pub git: String,
    /// The driver subcommand.
    pub cmd: String,
    /// The raw argument vector.
    pub argv: Vec<String>,
    /// Parsed `(key, value)` parameters.
    pub params: Vec<(String, String)>,
    /// Footer outcome (`ok`, `failed`, …); `None` when the run never
    /// closed its record.
    pub outcome: Option<String>,
    /// Footer exit code.
    pub exit_code: Option<i32>,
    /// Wall-clock duration, nanoseconds (footer).
    pub duration_ns: Option<u64>,
    /// Actual event lines in the record.
    pub events: usize,
    /// Actual `cell` events in the record.
    pub cells: usize,
    /// Artifact paths from the footer manifest.
    pub artifacts: Vec<String>,
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string `{key}`"))
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn parse_header(line: &str) -> Result<RunRecord, String> {
    let h = jsonv::parse(line).map_err(|e| format!("header: {e}"))?;
    let version = req_u64(&h, "schema_version").map_err(|e| format!("header: {e}"))?;
    if version < LEDGER_MIN_SCHEMA_VERSION as u64 || version > LEDGER_SCHEMA_VERSION as u64 {
        return Err(format!(
            "schema_version {version} (this tool reads \
             v{LEDGER_MIN_SCHEMA_VERSION}..v{LEDGER_SCHEMA_VERSION})"
        ));
    }
    let format = req_str(&h, "format").map_err(|e| format!("header: {e}"))?;
    if format != LEDGER_FORMAT {
        return Err(format!("format `{format}` (expected `{LEDGER_FORMAT}`)"));
    }
    if req_str(&h, "record")? != "header" {
        return Err("first line is not a header record".to_string());
    }
    let machine = h.get("machine").ok_or("header: missing `machine`")?;
    req_str(machine, "os").map_err(|e| format!("header machine: {e}"))?;
    req_str(machine, "arch").map_err(|e| format!("header machine: {e}"))?;
    req_u64(machine, "cpus").map_err(|e| format!("header machine: {e}"))?;
    let argv = h
        .get("argv")
        .and_then(Value::as_arr)
        .ok_or("header: missing `argv` array")?
        .iter()
        .map(|a| a.as_str().map(str::to_string).ok_or("header: non-string argv entry".to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    let params = match h.get("params") {
        Some(Value::Obj(fields)) => fields
            .iter()
            .map(|(k, v)| {
                v.as_str()
                    .map(|v| (k.clone(), v.to_string()))
                    .ok_or(format!("header: non-string param `{k}`"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("header: missing `params` object".to_string()),
    };
    Ok(RunRecord {
        schema_version: version as u32,
        id: req_str(&h, "id").map_err(|e| format!("header: {e}"))?,
        ts: req_u64(&h, "ts").map_err(|e| format!("header: {e}"))?,
        git: req_str(&h, "git").map_err(|e| format!("header: {e}"))?,
        cmd: req_str(&h, "cmd").map_err(|e| format!("header: {e}"))?,
        argv,
        params,
        outcome: None,
        exit_code: None,
        duration_ns: None,
        events: 0,
        cells: 0,
        artifacts: Vec::new(),
    })
}

/// Parses one run record leniently: the header is required, the footer
/// is optional (an interrupted run yields `outcome == None`). Event
/// and cell counts come from the actual event lines.
pub fn parse_record(text: &str) -> Result<RunRecord, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty record")?;
    let mut rec = parse_header(header)?;
    for (i, line) in lines.enumerate() {
        let v = jsonv::parse(line).map_err(|e| format!("line {}: {e}", i + 2))?;
        match v.get("record").and_then(Value::as_str) {
            Some("event") => {
                let kind = req_str(&v, "event").map_err(|e| format!("line {}: {e}", i + 2))?;
                rec.events += 1;
                if kind == "cell" {
                    rec.cells += 1;
                }
            }
            Some("footer") => {
                if rec.outcome.is_some() {
                    return Err(format!("line {}: second footer", i + 2));
                }
                rec.outcome = Some(req_str(&v, "outcome").map_err(|e| format!("footer: {e}"))?);
                rec.exit_code = Some(
                    v.get("exit_code")
                        .and_then(Value::as_f64)
                        .ok_or("footer: missing or non-numeric `exit_code`")?
                        as i32,
                );
                rec.duration_ns =
                    Some(req_u64(&v, "duration_ns").map_err(|e| format!("footer: {e}"))?);
                rec.artifacts = v
                    .get("artifacts")
                    .and_then(Value::as_arr)
                    .ok_or("footer: missing `artifacts` array")?
                    .iter()
                    .map(|a| {
                        a.as_str()
                            .map(str::to_string)
                            .ok_or("footer: non-string artifact".to_string())
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            Some(other) => return Err(format!("line {}: unknown record `{other}`", i + 2)),
            None => return Err(format!("line {}: missing `record` tag", i + 2)),
        }
        if rec.outcome.is_some() {
            // The footer must be the physically-last line.
            continue;
        }
    }
    Ok(rec)
}

/// Strictly validates one run record: header first, footer last and
/// present, every middle line an event, and the footer's `events` /
/// `cells` counts reconciling exactly with the actual event lines.
pub fn validate_record(text: &str) -> Result<RunRecord, String> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let rec = parse_record(text)?;
    if rec.outcome.is_none() {
        return Err("no footer: the run never closed its record (interrupted?)".to_string());
    }
    let last = lines.last().expect("parse_record demands a header");
    let footer = jsonv::parse(last).map_err(|e| format!("footer: {e}"))?;
    if footer.get("record").and_then(Value::as_str) != Some("footer") {
        return Err("last line is not the footer record".to_string());
    }
    let declared_events = req_u64(&footer, "events").map_err(|e| format!("footer: {e}"))?;
    let declared_cells = req_u64(&footer, "cells").map_err(|e| format!("footer: {e}"))?;
    if declared_events != rec.events as u64 {
        return Err(format!(
            "footer declares {declared_events} events but the record holds {}",
            rec.events
        ));
    }
    if declared_cells != rec.cells as u64 {
        return Err(format!(
            "footer declares {declared_cells} cells but the record holds {} cell events",
            rec.cells
        ));
    }
    let progress = footer.get("progress").ok_or("footer: missing `progress`")?;
    for key in ["queued", "started", "finished", "warm_hits"] {
        req_u64(progress, key).map_err(|e| format!("footer progress: {e}"))?;
    }
    if rec.schema_version >= 2 {
        // The cell-cache counters arrived with schema v2; a v1 record
        // legitimately lacks them.
        for key in ["cache_hits", "cache_misses"] {
            req_u64(progress, key).map_err(|e| format!("footer progress: {e}"))?;
        }
    }
    let workers =
        progress.get("workers").and_then(Value::as_arr).ok_or("footer: missing `workers` array")?;
    for w in workers {
        req_u64(w, "busy_ns").map_err(|e| format!("footer worker: {e}"))?;
        req_u64(w, "items").map_err(|e| format!("footer worker: {e}"))?;
    }
    Ok(rec)
}

/// A unix timestamp as a compact, lexicographically-sortable UTC stamp
/// (`YYYYMMDDTHHMMSSZ`; civil-from-days Gregorian arithmetic, no
/// timezone dependency).
pub fn utc_stamp(ts: u64) -> String {
    let days = (ts / 86_400) as i64;
    let secs = ts % 86_400;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}{m:02}{d:02}T{:02}{:02}{:02}Z", secs / 3_600, (secs / 60) % 60, secs % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ms-ledger-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn meta() -> RunMeta {
        RunMeta {
            cmd: "forwarding".to_string(),
            argv: vec!["forwarding".to_string(), "--jobs".to_string(), "2".to_string()],
            git: "abc1234".to_string(),
            params: vec![("jobs".to_string(), "2".to_string())],
        }
    }

    #[test]
    fn utc_stamps_are_civil_and_sortable() {
        assert_eq!(utc_stamp(0), "19700101T000000Z");
        assert_eq!(utc_stamp(951_782_400), "20000229T000000Z");
        assert_eq!(utc_stamp(1_754_006_400 + 3_661), "20250801T010101Z");
        assert!(utc_stamp(1_000_000_000) < utc_stamp(2_000_000_000));
    }

    #[test]
    fn record_round_trips_through_the_validator() {
        let dir = tmp("roundtrip");
        let mut ledger = RunLedger::open_at(&dir, &meta(), 1_754_006_400).unwrap();
        assert_eq!(ledger.id(), "20250801T000000Z-abc1234-forwarding");
        ledger.event("cell", vec![("cell", Value::Str("go-dead".to_string()))]);
        ledger.event("cell", vec![("cell", Value::Str("go-naive".to_string()))]);
        ledger.event("note", vec![("text", Value::Str("warmup done".to_string()))]);
        ledger.artifact("target/experiments/forwarding/go-dead.json");
        let mut snap = ProgressSnapshot::default();
        snap.queued = 2;
        snap.finished = 2;
        snap.workers = vec![(123, 2)];
        let path = ledger.close("ok", 0, &snap).unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let rec = validate_record(&text).expect("record validates");
        assert_eq!(rec.cmd, "forwarding");
        assert_eq!(rec.git, "abc1234");
        assert_eq!(rec.ts, 1_754_006_400);
        assert_eq!(rec.events, 3);
        assert_eq!(rec.cells, 2);
        assert_eq!(rec.outcome.as_deref(), Some("ok"));
        assert_eq!(rec.exit_code, Some(0));
        assert_eq!(rec.artifacts.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_only_record_parses_but_never_validates() {
        let dir = tmp("stub");
        let ledger = RunLedger::open_at(&dir, &meta(), 1_754_006_400).unwrap();
        let text = std::fs::read_to_string(ledger.path()).unwrap();
        let rec = parse_record(&text).expect("header-only record parses");
        assert_eq!(rec.outcome, None);
        assert!(validate_record(&text).unwrap_err().contains("no footer"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_stamps_get_numeric_suffixes() {
        let dir = tmp("collide");
        let a = RunLedger::open_at(&dir, &meta(), 1_754_006_400).unwrap();
        let b = RunLedger::open_at(&dir, &meta(), 1_754_006_400).unwrap();
        assert_ne!(a.id(), b.id());
        assert!(b.id().ends_with("-2"), "got {}", b.id());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validation_rejects_count_mismatches() {
        let dir = tmp("mismatch");
        let mut ledger = RunLedger::open_at(&dir, &meta(), 1_754_006_400).unwrap();
        ledger.event("cell", vec![("cell", Value::Str("x".to_string()))]);
        let path = ledger.close("ok", 0, &ProgressSnapshot::default()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(validate_record(&text).is_ok());
        let broken = text.replace("\"cells\":1", "\"cells\":7");
        assert!(validate_record(&broken).unwrap_err().contains("7 cells"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_sink_counts_nothing_and_enabled_sink_counts() {
        let off = ProgressSink::disabled();
        off.add_queued(5);
        off.cell_started();
        off.worker_busy(0, 100, 1);
        assert_eq!(off.snapshot(), ProgressSnapshot::default());

        let on = ProgressSink::new(2);
        on.add_queued(3);
        on.cell_started();
        on.cell_finished();
        on.warm_hit();
        on.cache_hit();
        on.cache_hit();
        on.cache_miss();
        on.worker_busy(1, 250, 1);
        on.worker_busy(9, 999, 1); // out of range: ignored
        let snap = on.snapshot();
        assert_eq!(snap.queued, 3);
        assert_eq!(snap.started, 1);
        assert_eq!(snap.finished, 1);
        assert_eq!(snap.warm_hits, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.workers, vec![(0, 0), (250, 1)]);
    }

    #[test]
    fn v1_records_without_cache_counters_still_validate() {
        let v1 = "{\"schema_version\":1,\"format\":\"ms-run-ledger\",\"record\":\"header\",\
                  \"id\":\"20250801T000000Z-abc1234-forwarding\",\"ts\":1754006400,\
                  \"git\":\"abc1234\",\"cmd\":\"forwarding\",\"argv\":[\"forwarding\"],\
                  \"params\":{},\"machine\":{\"os\":\"linux\",\"arch\":\"x86_64\",\"cpus\":8}}\n\
                  {\"record\":\"footer\",\"outcome\":\"ok\",\"exit_code\":0,\"duration_ns\":5,\
                  \"events\":0,\"cells\":0,\"artifacts\":[],\"progress\":{\"queued\":0,\
                  \"started\":0,\"finished\":0,\"warm_hits\":0,\"workers\":[]}}\n";
        let rec = validate_record(v1).expect("v1 record validates without cache counters");
        assert_eq!(rec.schema_version, 1);

        // The same footer under a v2 header must carry the counters.
        let v2 = v1.replace("\"schema_version\":1", "\"schema_version\":2");
        assert!(validate_record(&v2).unwrap_err().contains("cache_hits"));
        let v2_full =
            v2.replace("\"warm_hits\":0,", "\"warm_hits\":0,\"cache_hits\":0,\"cache_misses\":0,");
        assert_eq!(validate_record(&v2_full).expect("full v2 validates").schema_version, 2);

        // Versions outside the readable range are rejected outright.
        let v9 = v1.replace("\"schema_version\":1", "\"schema_version\":9");
        assert!(parse_record(&v9).unwrap_err().contains("schema_version 9"));
    }
}
