//! The data a profiling session hands back, and its JSON form.

use std::fmt::Write as _;

/// Version of the profiler report JSON fragments embedded in perf
/// artifacts (`spans` / `counters` / `gauges` / `hists` shapes). The
/// `BENCH_*.json` document that embeds them carries its own schema
/// version (see `ms_bench::perfcmd`).
pub const PROF_SCHEMA_VERSION: u32 = 1;

/// Number of log2 histogram buckets: bucket `i` holds values whose
/// `hist_bucket` is `i`, i.e. `0`, then `[2^(i-1), 2^i)`.
pub const HIST_BUCKETS: usize = 65;

/// The log2 bucket index for `v`: `0` for `v == 0`, otherwise
/// `64 - v.leading_zeros()` (so 1 → 1, 2..=3 → 2, 4..=7 → 3, …).
pub fn hist_bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Aggregated wall time for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// `/`-joined hierarchical path (`select/analysis.defuse`).
    pub path: String,
    /// Times the span closed.
    pub count: u64,
    /// Summed wall time, nanoseconds.
    pub total_ns: u64,
    /// Summed work items (0 when the span never called `add_items`).
    pub items: u64,
}

impl SpanStat {
    /// Items per second, if the span recorded items and took time.
    pub fn per_s(&self) -> Option<f64> {
        (self.items > 0 && self.total_ns > 0)
            .then(|| self.items as f64 / (self.total_ns as f64 / 1e9))
    }
}

/// One closed span occurrence — the raw material of the Chrome
/// `trace_event` pipeline view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInstance {
    /// `/`-joined hierarchical path at closing time.
    pub path: String,
    /// Start, nanoseconds since the collector was enabled.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// A monotonic log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistStat {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Fixed log2 buckets (see [`hist_bucket`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistStat {
    fn default() -> Self {
        HistStat { count: 0, sum: 0, buckets: [0; HIST_BUCKETS] }
    }
}

/// Everything one profiling session collected.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Per-path aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Raw span occurrences, in closing order.
    pub instances: Vec<SpanInstance>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, sorted by name.
    pub hists: Vec<(String, HistStat)>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Report {
    /// Wall time charged to the top-level spans (paths without `/`) —
    /// by construction never more than the session's end-to-end wall
    /// time, since nested spans are charged to deeper paths.
    pub fn top_level_total_ns(&self) -> u64 {
        self.spans.iter().filter(|s| !s.path.contains('/')).map(|s| s.total_ns).sum()
    }

    /// The `spans` array as hand-rolled JSON (stable order — sorted by
    /// path), one object per path with `path`, `count`, `total_ns`,
    /// `items`.
    pub fn spans_json(&self) -> String {
        let rows: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "{{\"path\":\"{}\",\"count\":{},\"total_ns\":{},\"items\":{}}}",
                    esc(&s.path),
                    s.count,
                    s.total_ns,
                    s.items
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }

    /// The registry (counters, gauges, non-empty histogram buckets) as
    /// one hand-rolled JSON object.
    pub fn registry_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{{\"name\":\"{}\",\"value\":{v}}}", esc(k)))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| {
                if v.is_finite() {
                    format!("{{\"name\":\"{}\",\"value\":{v}}}", esc(k))
                } else {
                    format!("{{\"name\":\"{}\",\"value\":null}}", esc(k))
                }
            })
            .collect();
        let hists: Vec<String> = self
            .hists
            .iter()
            .map(|(k, h)| {
                let buckets: Vec<String> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| format!("[{i},{n}]"))
                    .collect();
                format!(
                    "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"log2_buckets\":[{}]}}",
                    esc(k),
                    h.count,
                    h.sum,
                    buckets.join(",")
                )
            })
            .collect();
        format!(
            "{{\"counters\":[{}],\"gauges\":[{}],\"hists\":[{}]}}",
            counters.join(","),
            gauges.join(","),
            hists.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(u64::MAX), 64);
    }

    #[test]
    fn per_s_requires_items_and_time() {
        let mut s = SpanStat { path: "p".into(), count: 1, total_ns: 500_000_000, items: 0 };
        assert!(s.per_s().is_none());
        s.items = 100;
        assert!((s.per_s().unwrap() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn top_level_total_excludes_nested_paths() {
        let r = Report {
            spans: vec![
                SpanStat { path: "a".into(), count: 1, total_ns: 10, items: 0 },
                SpanStat { path: "a/b".into(), count: 1, total_ns: 7, items: 0 },
                SpanStat { path: "c".into(), count: 1, total_ns: 5, items: 0 },
            ],
            ..Report::default()
        };
        assert_eq!(r.top_level_total_ns(), 15);
    }

    #[test]
    fn json_fragments_are_well_formed() {
        let mut h = HistStat::default();
        h.count = 1;
        h.sum = 5;
        h.buckets[hist_bucket(5)] = 1;
        let r = Report {
            spans: vec![SpanStat { path: "a\"b".into(), count: 1, total_ns: 2, items: 3 }],
            counters: vec![("c".into(), 4)],
            gauges: vec![("g".into(), f64::NAN)],
            hists: vec![("h".into(), h)],
            ..Report::default()
        };
        assert_eq!(
            r.spans_json(),
            "[{\"path\":\"a\\\"b\",\"count\":1,\"total_ns\":2,\"items\":3}]"
        );
        let reg = r.registry_json();
        assert!(reg.contains("\"counters\":[{\"name\":\"c\",\"value\":4}]"));
        assert!(reg.contains("\"value\":null"));
        assert!(reg.contains("\"log2_buckets\":[[3,1]]"));
    }
}
