//! A minimal JSON reader for the perf-regression gate.
//!
//! The repository writes all artifacts with hand-rolled JSON; the
//! `run -- perf --baseline` comparator is the first consumer that must
//! *read* one back. This is a small recursive-descent parser for the
//! full JSON value grammar — enough to load a `BENCH_*.json` document
//! and walk it. Numbers parse as `f64` (every number the perf schema
//! emits is exactly representable or only compared approximately).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64`.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialises the value back to compact JSON (object field order
    /// preserved). Round-trips everything this module can parse;
    /// non-finite numbers (unreachable from [`parse`]) become `null`.
    pub fn to_json(&self) -> String {
        match self {
            Value::Null => "null".to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Num(n) if n.is_finite() => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n}")
                }
            }
            Value::Num(_) => "null".to_string(),
            Value::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
                out
            }
            Value::Arr(items) => {
                let parts: Vec<String> = items.iter().map(Value::to_json).collect();
                format!("[{}]", parts.join(","))
            }
            Value::Obj(fields) => {
                let parts: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", Value::Str(k.clone()).to_json(), v.to_json()))
                    .collect();
                format!("{{{}}}", parts.join(","))
            }
        }
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    s.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number `{s}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by any artifact
                        // writer in this repository; reject them.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u escape {code:04x}"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e1").unwrap(), Value::Num(-125.0));
        assert_eq!(parse("\"a\\nb\\u0041\"").unwrap(), Value::Str("a\nbA".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse("{\"a\":[1,2,{\"b\":\"x\"}],\"c\":{}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap(), &Value::Obj(vec![]));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn as_u64_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn round_trips_own_output() {
        let text = "{\"a\":[1,2.5,{\"b\":\"x\\\"y\"}],\"n\":null,\"t\":true}";
        let v = parse(text).unwrap();
        let again = parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
        assert_eq!(v.to_json(), text);
    }

    #[test]
    fn round_trips_a_realistic_perf_doc_fragment() {
        let text = "{\"schema_version\":1,\"phases\":[{\"phase\":\"sim.run\",\
                    \"median_ns\":123456,\"count\":6,\"items\":12000}]}";
        let v = parse(text).unwrap();
        let phases = v.get("phases").unwrap().as_arr().unwrap();
        assert_eq!(phases[0].get("median_ns").unwrap().as_u64(), Some(123456));
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
