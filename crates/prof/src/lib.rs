//! Self-profiling for the reproduction pipeline: a dependency-free,
//! zero-cost-when-off hierarchical span profiler plus a metrics
//! registry.
//!
//! PR 2 made the *simulated machine* observable (`ms_sim::TraceSink`);
//! this crate makes the *pipeline itself* observable: where wall-clock
//! goes across workload build → analysis passes → task selection →
//! trace generation → simulation. Every pipeline phase in the library
//! crates opens a [`span`]; the `run -- perf` driver subcommand enables
//! a collector, runs the canonical sweep cells, and turns the report
//! into the schema-versioned `BENCH_<gitshort>.json` perf trajectory
//! (see `docs/PROFILING.md`).
//!
//! # Design
//!
//! Profiling state is **thread-local** and off by default. [`span`]
//! consults the thread's collector slot; with no collector installed it
//! returns the null span — no clock read, no allocation, no branch
//! beyond the thread-local check. That disabled path is the
//! [`NullProfiler`], mirroring `ms_sim::NullSink`: the
//! `tests/no_alloc.rs` integration test pins the no-allocation
//! guarantee with a counting global allocator, and `ms-sim` pins it on
//! the hot simulation loop.
//!
//! With a collector [`enable`]d, spans nest: each guard pushes its name
//! on a stack, and on drop charges its wall time to the `/`-joined
//! path (`select/analysis.defuse`). The registry half records named
//! [counters](counter_add), [gauges](gauge_set) and monotonic
//! [histograms](hist_record) with fixed log2 buckets. [`disable`]
//! returns everything as a [`Report`] — aggregated span stats, raw span
//! instances (for the Chrome `trace_event` view), and the registry —
//! serialisable as hand-rolled JSON like the rest of the repository.
//!
//! # Example
//!
//! ```
//! ms_prof::enable();
//! {
//!     let outer = ms_prof::span("select");
//!     outer.add_items(128); // e.g. blocks partitioned -> blocks/s
//!     let _inner = ms_prof::span("analysis.dom");
//!     ms_prof::counter_add("select.tasks", 3);
//!     ms_prof::hist_record("select.task_blocks", 5);
//! }
//! let report = ms_prof::disable().unwrap();
//! let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
//! assert_eq!(paths, ["select", "select/analysis.dom"]);
//! assert_eq!(report.counters[0], ("select.tasks".to_string(), 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod jsonv;
pub mod ledger;
mod profiler;
mod report;

pub use profiler::{
    counter_add, disable, enable, gauge_set, hist_record, is_enabled, span, span_owned,
    NullProfiler, Span,
};
pub use report::{hist_bucket, HistStat, Report, SpanInstance, SpanStat, PROF_SCHEMA_VERSION};
