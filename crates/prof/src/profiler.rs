//! The thread-local collector behind [`span`] and the registry calls.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::report::{hist_bucket, HistStat, Report, SpanInstance, SpanStat};

thread_local! {
    static COLLECTOR: RefCell<Option<Collector>> = RefCell::new(None);
}

/// Accumulated data for one span path.
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    items: u64,
}

/// The live profiling session for one thread.
#[derive(Debug)]
struct Collector {
    /// Time zero for span instance timestamps.
    epoch: Instant,
    /// Names of the currently open spans, outermost first.
    stack: Vec<String>,
    /// Per-path aggregates, keyed by the `/`-joined span path.
    aggs: BTreeMap<String, SpanAgg>,
    /// Every closed span occurrence, in closing order.
    instances: Vec<SpanInstance>,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, HistStat>,
}

impl Collector {
    fn new() -> Self {
        Collector {
            epoch: Instant::now(),
            stack: Vec::new(),
            aggs: BTreeMap::new(),
            instances: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// Closes the innermost span: pops the stack, charges `dur` and
    /// `items` to the full path, and records the instance.
    fn exit(&mut self, start: Instant, dur_ns: u64, items: u64) {
        let name = self.stack.pop().unwrap_or_else(|| "?".to_string());
        let path = if self.stack.is_empty() {
            name
        } else {
            let mut p = self.stack.join("/");
            p.push('/');
            p.push_str(&name);
            p
        };
        let agg = self.aggs.entry(path.clone()).or_default();
        agg.count += 1;
        agg.total_ns += dur_ns;
        agg.items += items;
        let start_ns = start.duration_since(self.epoch).as_nanos() as u64;
        self.instances.push(SpanInstance { path, start_ns, dur_ns });
    }

    fn into_report(self) -> Report {
        Report {
            spans: self
                .aggs
                .into_iter()
                .map(|(path, a)| SpanStat {
                    path,
                    count: a.count,
                    total_ns: a.total_ns,
                    items: a.items,
                })
                .collect(),
            instances: self.instances,
            counters: self.counters.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            gauges: self.gauges.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            hists: self.hists.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }
}

/// Installs a fresh collector on the current thread. A collector that
/// was already enabled is discarded (its data is lost).
pub fn enable() {
    COLLECTOR.with(|c| *c.borrow_mut() = Some(Collector::new()));
}

/// Uninstalls the current thread's collector and returns its
/// [`Report`]; `None` if profiling was not enabled. Spans still open
/// when `disable` runs are dropped from the report (their guards
/// outlived the session).
pub fn disable() -> Option<Report> {
    COLLECTOR.with(|c| c.borrow_mut().take()).map(Collector::into_report)
}

/// Whether a collector is installed on the current thread. Callers with
/// non-trivial *preparation* cost for registry values (e.g. walking a
/// partition to histogram task sizes) should gate on this; plain
/// [`span`]/[`counter_add`] calls need no guard.
pub fn is_enabled() -> bool {
    COLLECTOR.with(|c| c.borrow().is_some())
}

/// An open span. Created by [`span`]/[`span_owned`]; records its wall
/// time (and [items](Span::add_items)) to the thread's collector on
/// drop. Guards must drop in LIFO order — in practice, bind one per
/// scope (`let _span = ms_prof::span("phase");`).
#[derive(Debug)]
pub struct Span {
    /// `None` = the null span: profiling was off at creation.
    start: Option<Instant>,
    items: std::cell::Cell<u64>,
}

impl Span {
    /// The no-op span handed out while profiling is off.
    fn null() -> Self {
        Span { start: None, items: std::cell::Cell::new(0) }
    }

    /// Adds `n` work items (blocks, dynamic instructions, …) to the
    /// span, giving the report a throughput (`items / total_ns`).
    pub fn add_items(&self, n: u64) {
        if self.start.is_some() {
            self.items.set(self.items.get() + n);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let dur_ns = start.elapsed().as_nanos() as u64;
            COLLECTOR.with(|c| {
                if let Some(col) = c.borrow_mut().as_mut() {
                    col.exit(start, dur_ns, self.items.get());
                }
            });
        }
    }
}

/// Opens a span named `name` on the current thread. With profiling off
/// this is the [`NullProfiler`] path: no clock read, no allocation.
pub fn span(name: &'static str) -> Span {
    span_impl(|| name.to_string())
}

/// [`span`] for dynamically built names (e.g. the per-cell spans of
/// `run -- perf`). The closure-free string is only constructed when
/// profiling is on — prefer passing a pre-built `String` only from
/// call sites that already know profiling is enabled.
pub fn span_owned(name: String) -> Span {
    span_impl(move || name)
}

fn span_impl(name: impl FnOnce() -> String) -> Span {
    COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        match slot.as_mut() {
            Some(col) => {
                col.stack.push(name());
                Span { start: Some(Instant::now()), items: std::cell::Cell::new(0) }
            }
            None => Span::null(),
        }
    })
}

/// Adds `delta` to the named monotonic counter. No-op while profiling
/// is off.
pub fn counter_add(name: &'static str, delta: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            *col.counters.entry(name).or_insert(0) += delta;
        }
    });
}

/// Sets the named gauge to `v` (last write wins). No-op while profiling
/// is off.
pub fn gauge_set(name: &'static str, v: f64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            col.gauges.insert(name, v);
        }
    });
}

/// Records `v` into the named histogram's log2 bucket (see
/// [`hist_bucket`]). No-op while profiling is off.
pub fn hist_record(name: &'static str, v: u64) {
    COLLECTOR.with(|c| {
        if let Some(col) = c.borrow_mut().as_mut() {
            let h = col.hists.entry(name).or_default();
            h.count += 1;
            h.sum += v;
            h.buckets[hist_bucket(v)] += 1;
        }
    });
}

/// The disabled profiler: what [`span`] and the registry calls behave
/// as while no collector is [`enable`]d on the thread. Every operation
/// is a no-op — no clock reads, no allocations — so instrumented
/// library code compiles to its pre-instrumentation path plus one
/// thread-local check per phase. Mirrors `ms_sim::NullSink`; the
/// guarantee is pinned by `tests/no_alloc.rs` here and by the sim
/// crate's `prof_null` test on the hot simulation loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProfiler;

impl NullProfiler {
    /// Returns the null span unconditionally, regardless of the
    /// thread's collector state.
    pub fn span(&self, _name: &'static str) -> Span {
        Span::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_null_span_is_inert() {
        assert!(!is_enabled());
        let s = span("nothing");
        s.add_items(10);
        drop(s);
        assert!(disable().is_none());
    }

    #[test]
    fn spans_nest_into_paths() {
        enable();
        {
            let _a = span("a");
            {
                let _b = span("b");
            }
            {
                let _b = span_owned("b".to_string());
            }
        }
        let r = disable().unwrap();
        let paths: Vec<(&str, u64)> = r.spans.iter().map(|s| (s.path.as_str(), s.count)).collect();
        assert_eq!(paths, [("a", 1), ("a/b", 2)]);
        assert_eq!(r.instances.len(), 3, "one instance per span occurrence");
        assert_eq!(r.instances[0].path, "a/b", "inner spans close first");
    }

    #[test]
    fn registry_records_counters_gauges_hists() {
        enable();
        counter_add("c", 2);
        counter_add("c", 3);
        gauge_set("g", 1.5);
        gauge_set("g", 2.5);
        hist_record("h", 0);
        hist_record("h", 5);
        let r = disable().unwrap();
        assert_eq!(r.counters, [("c".to_string(), 5)]);
        assert_eq!(r.gauges, [("g".to_string(), 2.5)]);
        let (name, h) = &r.hists[0];
        assert_eq!(name, "h");
        assert_eq!((h.count, h.sum), (2, 5));
        assert_eq!(h.buckets[hist_bucket(0)], 1);
        assert_eq!(h.buckets[hist_bucket(5)], 1);
    }

    #[test]
    fn items_accumulate_and_feed_throughput() {
        enable();
        {
            let s = span("work");
            s.add_items(7);
            s.add_items(5);
        }
        let r = disable().unwrap();
        assert_eq!(r.spans[0].items, 12);
    }

    #[test]
    fn null_profiler_hands_out_null_spans_even_when_enabled() {
        enable();
        {
            let _s = NullProfiler.span("ignored");
        }
        let r = disable().unwrap();
        assert!(r.spans.is_empty());
    }
}
