#!/bin/sh
# Tier-1 gate: everything a PR must keep green, in the order a failure
# is cheapest to notice. Runs fully offline (no network, no extra
# toolchain components beyond rustfmt).
#
#   ./scripts/check.sh
#
# 1. release build of every crate (benches included),
# 2. the full test suite on default features (`heavy-tests` scales the
#    randomized suites up and is opt-in: cargo test --features heavy-tests),
# 3. rustdoc with warnings denied (missing docs fail the build),
# 4. formatting.
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --benches"
cargo build --workspace --release --benches

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
