#!/bin/sh
# Tier-1 gate: everything a PR must keep green, in the order a failure
# is cheapest to notice. Runs fully offline (no network, no extra
# toolchain components beyond rustfmt).
#
#   ./scripts/check.sh
#
# 1. release build of every crate (benches and examples included),
# 2. the full test suite on default features (`heavy-tests` scales the
#    randomized suites up and is opt-in: cargo test --features heavy-tests),
# 3. rustdoc with warnings denied (missing docs and broken intra-doc
#    links fail the build),
# 4. formatting,
# 5. public-API snapshot: every `pub` declaration must match
#    tests/api_snapshot.txt (MS_BLESS=1 to re-bless deliberately),
# 6. docs gate: the metric tables in EXPERIMENTS.md / docs/METRICS.md /
#    docs/PROFILING.md / docs/PERF-HISTORY.md / docs/OBSERVABILITY.md
#    must only name fields that still exist in the source; every
#    relative markdown link must resolve; every docs/*.md must be
#    routed from docs/INDEX.md,
# 7. perf gate: `run -- perf --baseline best` measures the canonical
#    cells and fails on any phase regressing beyond the threshold
#    against the best-ever committed BENCH_*.json that matches this
#    machine (fingerprint + instruction budget; incomparable machines
#    skip the comparison). One automatic retry absorbs
#    just-after-a-build scheduler noise. Escape hatches
#    (docs/PERF-HISTORY.md):
#      MS_PERF_ACCEPT_REGRESSION=1  report regressions without failing
#                                   (intentional slowdowns — say so in
#                                   the PR description),
#      MS_PERF_BASELINE=FILE        gate against one specific baseline
#                                   instead of best-ever,
# 8. perf-history smoke: the committed baselines must aggregate into
#    target/perf-smoke/perf/history.{html,json}, the JSON must pass
#    `run -- perf-validate`, and — deterministically, no measurement
#    involved — the committed trajectory must be free of cumulative
#    drift vs best-ever (MS_PERF_ACCEPT_REGRESSION=1 reports instead),
# 9. conformance fuzz smoke: 25 random programs x every registered
#    selection policy must match the sequential reference model on
#    BOTH execution engines (--engine both: scalar and batch paths
#    checked differentially, bit-identical stats demanded;
#    docs/CONFORMANCE.md),
# 10. run-ledger smoke: a small sweep must leave a run record that
#    passes `run -- runs-validate` and shows up in `run -- runs`;
#    the same grid re-run under --engine scalar must be byte-identical
#    to the batch-engine artifacts (the engine-identity contract,
#    DESIGN.md section 6); target/experiments/runs/ is pruned to the
#    newest 50 records (docs/OBSERVABILITY.md),
# 11. sweep-service smoke: a daemon (`run -- serve`) must accept two
#    identical submissions, serve the second one entirely from the
#    content-addressed cell cache (zero cells simulated), produce
#    artifacts byte-identical to the one-shot CLI path, and shut down
#    cleanly within the timeout budget (docs/SERVICE.md).
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --release --benches --examples"
cargo build --workspace --release --benches --examples

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo doc --workspace --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> public API snapshot (tests/api_snapshot.txt)"
# An unreviewed signature change to the typed public surface fails here;
# deliberate changes are re-blessed with MS_BLESS=1 and show up in the diff.
cargo test --release -q --test api_snapshot

echo "==> docs gate (metric tables vs. source)"
# Every backticked snake_case name opening a markdown table row in the
# metric docs must appear somewhere in the crates' source: a renamed or
# removed counter/field must take its documentation row with it.
docs_fail=0
for doc in EXPERIMENTS.md docs/METRICS.md docs/TRACING.md docs/PROFILING.md \
           docs/PERF-HISTORY.md docs/OBSERVABILITY.md docs/SERVICE.md; do
    [ -f "$doc" ] || { echo "missing $doc"; docs_fail=1; continue; }
done
for doc in EXPERIMENTS.md docs/METRICS.md docs/PROFILING.md docs/PERF-HISTORY.md \
           docs/OBSERVABILITY.md; do
    fields=$(grep -o '^| `[a-z][a-z0-9_]*`' "$doc" | sed 's/^| `//; s/`$//' | sort -u)
    for f in $fields; do
        if ! grep -rq "$f" crates/*/src; then
            echo "$doc documents \`$f\` but it does not appear in crates/*/src"
            docs_fail=1
        fi
    done
done
# Relative markdown links must resolve: a moved or renamed file must
# take every `[text](path)` pointing at it along. External links
# (scheme prefixes) and intra-page anchors are out of scope.
for doc in $(git ls-files '*.md'); do
    dir=$(dirname "$doc")
    links=$(grep -o '](\./\{0,1\}[A-Za-z0-9_.-]\{1,\}\.md[#)]' "$doc" \
        | sed 's/^](//; s/[#)]$//' || true)
    nested=$(grep -o ']([A-Za-z0-9_-]\{1,\}/[A-Za-z0-9_./-]\{1,\}\.md[#)]' "$doc" \
        | sed 's/^](//; s/[#)]$//' || true)
    updir=$(grep -o '](\.\./[A-Za-z0-9_./-]\{1,\}\.md[#)]' "$doc" \
        | sed 's/^](//; s/[#)]$//' || true)
    for link in $links $nested $updir; do
        if [ ! -f "$dir/$link" ]; then
            echo "$doc links to \`$link\` but $dir/$link does not exist"
            docs_fail=1
        fi
    done
done
# Every docs/*.md must be reachable from the index's routing table.
for doc in docs/*.md; do
    base=$(basename "$doc")
    [ "$base" = "INDEX.md" ] && continue
    if ! grep -q "($base)" docs/INDEX.md; then
        echo "docs/INDEX.md does not route to $doc"
        docs_fail=1
    fi
done
[ "$docs_fail" -eq 0 ] || { echo "docs gate failed"; exit 1; }

echo "==> perf gate (run -- perf --baseline best, best-ever committed baseline)"
smoke_dir=target/perf-smoke
rm -rf "$smoke_dir"
# Always-on: measure at the committed baselines' instruction budget and
# gate against the best-ever comparable one. `--baseline best` skips the
# comparison (but still validates the document) when no committed
# baseline matches this machine's fingerprint + budget, so the gate is
# portable. The 1 ms gate floor leaves sub-millisecond phases out of the
# verdict: they flap by double-digit percent under CI scheduler noise
# while the phases that dominate the runtime (sim.run, trace.generate,
# the total) are stable. docs/PERF-HISTORY.md documents the escape
# hatches.
gate_args="--reps 3 --bench-out $smoke_dir/BENCH_smoke.json --out $smoke_dir"
gate_args="$gate_args --baseline ${MS_PERF_BASELINE:-best} --noise-floor-ns 1000000"
if [ -n "${MS_PERF_ACCEPT_REGRESSION:-}" ]; then
    echo "    (MS_PERF_ACCEPT_REGRESSION set: reporting regressions without failing)"
    gate_args="$gate_args --no-gate"
fi
# Measured on this container: perf straight after the build/test burst
# reads 30-60% slow across every phase (CPU-quota throttle / thermal
# recovery), then returns to baseline within ~30s of idle. Settle
# first; on failure, settle longer and retry once — a real regression
# fails both attempts.
sleep 15
# shellcheck disable=SC2086  # gate_args is a flat flag list by construction
if ! cargo run -p ms-bench --release --bin run -q -- perf $gate_args; then
    echo "    perf gate failed; settling 45s and retrying once (post-build throttle)"
    sleep 45
    rm -rf "$smoke_dir"
    # shellcheck disable=SC2086
    cargo run -p ms-bench --release --bin run -q -- perf $gate_args
fi
cargo run -p ms-bench --release --bin run -q -- perf-validate "$smoke_dir/BENCH_smoke.json"

echo "==> perf-history smoke (run -- perf-history, committed baselines)"
# Deterministic (input = the committed BENCH_*.json files): renders the
# trend table, emits both artifacts, and fails on cumulative drift vs
# best-ever — a slow bleed that never trips the pairwise gate above.
history_args=""
[ -n "${MS_PERF_ACCEPT_REGRESSION:-}" ] && history_args="--no-gate"
# shellcheck disable=SC2086
cargo run -p ms-bench --release --bin run -q -- perf-history --out "$smoke_dir" $history_args
for artifact in "$smoke_dir/perf/history.html" "$smoke_dir/perf/history.json"; do
    [ -f "$artifact" ] || { echo "perf-history did not emit $artifact"; exit 1; }
done
cargo run -p ms-bench --release --bin run -q -- perf-validate "$smoke_dir/perf/history.json"

echo "==> conformance fuzz smoke (run -- fuzz --seeds 25 --engine both)"
# Differential check: BOTH execution engines vs the sequential reference
# model on random programs under every selection policy, plus
# bit-identical stats demanded across the engines; failures shrink to
# .msir repros.
cargo run -p ms-bench --release --bin run -q -- fuzz --seeds 25 --engine both --out target/fuzz-smoke

echo "==> run-ledger smoke (run -- runs, docs/OBSERVABILITY.md)"
# The perf/perf-history/fuzz steps above each left a run record; add the
# cheapest sweep so the sweep scheduler's telemetry path is exercised
# too, then assert the ledger round-trips: every record validates and
# the listing surfaces the sweep we just ran.
cargo run -p ms-bench --release --bin run -q -- forwarding --jobs 2 --out target/ledger-smoke
# Engine identity at the artifact level: the same grid through the
# scalar engine must be byte-for-byte the batch-engine tree above.
cargo run -p ms-bench --release --bin run -q -- forwarding --jobs 2 --engine scalar \
    --out target/ledger-smoke-scalar
diff -r target/ledger-smoke/forwarding target/ledger-smoke-scalar/forwarding \
    || { echo "batch and scalar engines emitted different sweep artifacts"; exit 1; }
cargo run -p ms-bench --release --bin run -q -- runs-validate
# Filter by command: record ids have one-second resolution, and several
# smoke steps can finish inside the same second.
runs_listing=$(cargo run -p ms-bench --release --bin run -q -- runs --cmd forwarding --last 1)
echo "$runs_listing" | grep -q "forwarding" \
    || { echo "runs --cmd forwarding does not show the sweep just run"; exit 1; }
cargo run -p ms-bench --release --bin run -q -- runs --cmd perf --last 3
# Keep the ledger bounded: newest 50 records, oldest pruned (the
# UTC-stamp filename prefix makes lexicographic order chronological).
runs_dir=target/experiments/runs
if [ -d "$runs_dir" ]; then
    total=$(ls "$runs_dir"/*.jsonl 2>/dev/null | wc -l)
    if [ "$total" -gt 50 ]; then
        ls "$runs_dir"/*.jsonl | sort | head -n "$((total - 50))" | while IFS= read -r old; do
            rm -f "$old"
        done
        echo "    (pruned $((total - 50)) old run record(s), keeping the newest 50)"
    fi
fi

echo "==> sweep-service smoke (run -- serve, docs/SERVICE.md)"
# End-to-end through the real socket: the one-shot reference run, a
# daemon in the background, the same grid submitted twice. The second
# submission must be a pure cache replay ("0 computed" in the final
# status line) and both jobs' artifacts must be byte-identical to the
# one-shot tree. Everything runs the already-built release binary so
# the background daemon and the foreground clients never contend on a
# cargo build lock.
run_bin=target/release/run
serve_dir=target/serve-smoke
rm -rf "$serve_dir"
"$run_bin" forwarding --jobs 2 --quiet --out "$serve_dir/oneshot"
"$run_bin" serve --jobs 2 --quiet --out "$serve_dir/daemon" &
serve_pid=$!
# The daemon must come up inside the timeout budget (~15s).
ready=0
i=0
while [ "$i" -lt 30 ]; do
    if "$run_bin" jobs --out "$serve_dir/daemon" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.5
    i=$((i + 1))
done
[ "$ready" -eq 1 ] || { echo "serve daemon did not come up"; kill "$serve_pid" 2>/dev/null; exit 1; }
"$run_bin" submit forwarding --quiet --out "$serve_dir/daemon"
second=$("$run_bin" submit forwarding --out "$serve_dir/daemon")
echo "$second" | grep -q ", 0 computed" \
    || { echo "resubmitted grid was not served fully from the cell cache:"; echo "$second"; \
         "$run_bin" shutdown --out "$serve_dir/daemon"; exit 1; }
for job in job-1 job-2; do
    diff -r "$serve_dir/oneshot/forwarding" "$serve_dir/daemon/serve/$job/forwarding" \
        || { echo "served artifacts for $job differ from the one-shot run"; \
             "$run_bin" shutdown --out "$serve_dir/daemon"; exit 1; }
done
"$run_bin" shutdown --out "$serve_dir/daemon"
# Clean exit inside the timeout budget (~15s), else the daemon hung.
i=0
while [ "$i" -lt 30 ] && kill -0 "$serve_pid" 2>/dev/null; do
    sleep 0.5
    i=$((i + 1))
done
if kill -0 "$serve_pid" 2>/dev/null; then
    kill "$serve_pid" 2>/dev/null
    echo "serve daemon did not exit after shutdown"
    exit 1
fi
wait "$serve_pid" || { echo "serve daemon exited non-zero"; exit 1; }

echo "All checks passed."
