//! Public-API snapshot: every `pub` item declaration across the
//! workspace crates, pinned to a committed text file. An accidental
//! signature change, removal, or addition to the typed public surface
//! fails this test; a deliberate one is re-blessed with:
//!
//! ```text
//! MS_BLESS=1 cargo test --test api_snapshot
//! ```
//!
//! and reviewed as part of the diff (the snapshot file *is* the API
//! changelog). Wired into `scripts/check.sh`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Workspace-relative source roots that define the public surface.
const SOURCE_ROOTS: &[&str] = &[
    "src",
    "crates/prof/src",
    "crates/ir/src",
    "crates/analysis/src",
    "crates/core/src",
    "crates/trace/src",
    "crates/sim/src",
    "crates/workloads/src",
    "crates/conform/src",
    "crates/bench/src",
];

/// Item kinds that make up the API surface. `pub(crate)` and friends
/// never match because of the following `(`.
const KINDS: &[&str] = &[
    "pub fn ",
    "pub const fn ",
    "pub unsafe fn ",
    "pub async fn ",
    "pub struct ",
    "pub enum ",
    "pub trait ",
    "pub type ",
    "pub const ",
    "pub static ",
    "pub mod ",
    "pub use ",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Extracts the normalized `pub` declarations of one file: each
/// declaration is cut at its body (`{`), terminator (`;`) or value
/// (`=`), whitespace-collapsed, and prefixed with the file's
/// workspace-relative path.
fn declarations_of(path: &Path, rel: &str, out: &mut Vec<String>) {
    let text = std::fs::read_to_string(path).unwrap_or_default();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        // Test modules are not public API even if items inside say `pub`.
        if trimmed.starts_with("#[cfg(test)]") {
            break;
        }
        if KINDS.iter().any(|k| trimmed.starts_with(k)) {
            let mut decl = String::new();
            for line in &lines[i..] {
                let piece = line.trim();
                if !decl.is_empty() {
                    decl.push(' ');
                }
                decl.push_str(piece);
                i += 1;
                if piece.contains('{') || piece.contains(';') || piece.contains('=') {
                    break;
                }
            }
            let cut = decl.find(['{', ';', '=']).unwrap_or(decl.len());
            let sig = decl[..cut].trim_end().to_string();
            out.push(format!("{rel}: {sig}"));
        } else {
            i += 1;
        }
    }
}

fn snapshot() -> String {
    let root = workspace_root();
    let mut decls = Vec::new();
    for src in SOURCE_ROOTS {
        for file in rust_files(&root.join(src)) {
            let rel = file.strip_prefix(&root).unwrap().to_string_lossy().replace('\\', "/");
            declarations_of(&file, &rel, &mut decls);
        }
    }
    decls.sort();
    let mut out = String::from(
        "# Public API snapshot — every `pub` declaration in the workspace.\n\
         # Regenerate deliberately with: MS_BLESS=1 cargo test --test api_snapshot\n",
    );
    for d in &decls {
        writeln!(out, "{d}").unwrap();
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let got = snapshot();
    let path = workspace_root().join("tests/api_snapshot.txt");
    if std::env::var_os("MS_BLESS").is_some() {
        std::fs::write(&path, &got).expect("write snapshot");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .expect("tests/api_snapshot.txt exists (MS_BLESS=1 to create)");
    if got != want {
        let got_lines: std::collections::BTreeSet<_> = got.lines().collect();
        let want_lines: std::collections::BTreeSet<_> = want.lines().collect();
        let mut diff = String::new();
        for l in want_lines.difference(&got_lines) {
            writeln!(diff, "- {l}").unwrap();
        }
        for l in got_lines.difference(&want_lines) {
            writeln!(diff, "+ {l}").unwrap();
        }
        panic!(
            "public API surface changed; if deliberate, re-bless with \
             MS_BLESS=1 cargo test --test api_snapshot\n{diff}"
        );
    }
}

#[test]
fn snapshot_covers_the_new_surface() {
    // Sanity: the snapshot actually sees the API this PR introduces.
    let s = snapshot();
    for needle in [
        "pub fn select(&self, ctx: &ProgramContext)",
        "pub struct ProgramContext",
        "pub struct SelectorBuilder",
        "pub trait SelectionPolicy",
        "pub struct CostModel",
        "pub fn find_policy",
        "pub enum SweepSpec",
        "pub enum BenchError",
        "pub enum IrError",
        "pub struct SweepRequest",
        "pub enum JobEvent",
        "pub const API_SCHEMA_VERSION",
        "pub struct CellCache",
        "pub struct Server",
        "pub struct SweepObserver",
    ] {
        assert!(s.contains(needle), "snapshot is missing `{needle}`");
    }
}
