//! Golden-file test: a committed `.msir` program parses, validates, and
//! runs through the whole pipeline — guarding the textual format against
//! accidental syntax changes.

use multiscalar::ir::parse_program;
use multiscalar::prelude::*;

const GOLDEN: &str = include_str!("data/compress.msir");

#[test]
fn golden_msir_parses_and_runs() {
    let program = parse_program(GOLDEN).expect("golden file parses");
    assert!(program.validate().is_ok());
    assert_eq!(program.num_functions(), 1);
    assert_eq!(program.addr_gens().len(), 4);

    let sel = SelectorBuilder::new(Strategy::DataDependence)
        .max_targets(4)
        .build()
        .select(&ProgramContext::new(program));
    sel.partition.validate(&sel.program).expect("partition invariants");
    let trace = TraceGenerator::new(&sel.program, 1).generate(5_000);
    let stats = Simulator::new(SimConfig::four_pu(), &sel.program, &sel.partition).run(&trace);
    assert!(stats.ipc() > 0.1);
}

#[test]
fn golden_msir_round_trips() {
    let program = parse_program(GOLDEN).expect("golden file parses");
    let rewritten = multiscalar::ir::write_program(&program);
    let reparsed = parse_program(&rewritten).expect("rewrite parses");
    assert_eq!(program, reparsed);
}

#[test]
fn if_converted_programs_execute_fewer_control_transfers() {
    let program = parse_program(GOLDEN).expect("golden file parses");
    let converted = multiscalar::tasksel::if_convert(&program, 8);
    let cf = SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build();
    let sel_a = cf.select(&ProgramContext::new(program));
    let sel_b = cf.select(&ProgramContext::new(converted));
    let t_a = TraceGenerator::new(&sel_a.program, 3).generate(20_000);
    let t_b = TraceGenerator::new(&sel_b.program, 3).generate(20_000);
    let s_a = Simulator::new(SimConfig::four_pu(), &sel_a.program, &sel_a.partition).run(&t_a);
    let s_b = Simulator::new(SimConfig::four_pu(), &sel_b.program, &sel_b.partition).run(&t_b);
    let ct_rate_a = s_a.ct_insts as f64 / s_a.total_insts as f64;
    let ct_rate_b = s_b.ct_insts as f64 / s_b.total_insts as f64;
    assert!(
        ct_rate_b <= ct_rate_a,
        "if-conversion must not increase the control transfer rate ({ct_rate_b:.3} vs {ct_rate_a:.3})"
    );
}
