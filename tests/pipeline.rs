//! Whole-system integration: every workload runs the complete pipeline
//! (build → select → trace → split → simulate) under every strategy.

use multiscalar::prelude::*;

#[test]
fn every_workload_runs_end_to_end_under_every_strategy() {
    for w in multiscalar::workloads::suite() {
        let ctx = ProgramContext::new(w.build());
        for sel in [
            SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx),
            SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx),
            SelectorBuilder::new(Strategy::DataDependence).max_targets(4).build().select(&ctx),
            SelectorBuilder::new(Strategy::DataDependence)
                .max_targets(4)
                .task_size(TaskSizeParams::default())
                .build()
                .select(&ctx),
        ] {
            sel.partition
                .validate(&sel.program)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", w.name, sel.partition.strategy()));
            let trace = TraceGenerator::new(&sel.program, 11).generate(4_000);
            let tasks = split_tasks(&trace, &sel.program, &sel.partition);
            assert!(!tasks.is_empty(), "{}: no dynamic tasks", w.name);
            let stats =
                Simulator::new(SimConfig::four_pu(), &sel.program, &sel.partition).run(&trace);
            assert_eq!(
                stats.total_insts,
                trace.num_insts() as u64,
                "{} / {}: retired instruction mismatch",
                w.name,
                sel.partition.strategy()
            );
            assert!(stats.ipc() > 0.05, "{}: implausibly low IPC", w.name);
        }
    }
}

#[test]
fn estimated_and_measured_profiles_agree_on_hot_blocks() {
    // Only benchmarks whose full program run fits in the trace budget:
    // the estimator predicts per-*complete*-invocation frequencies.
    for name in ["m88ksim", "li", "go"] {
        let program = multiscalar::workloads::by_name(name).unwrap().build();
        let estimated = Profile::estimate(&program);
        let trace = TraceGenerator::new(&program, 3).generate(120_000);
        assert!(
            trace
                .steps()
                .iter()
                .any(|st| matches!(st.outcome, multiscalar::trace::CtOutcome::Halt)),
            "{name}: trace must contain at least one complete run"
        );
        let measured = multiscalar::trace::measure_profile(&trace, &program);
        // Compare per-invocation frequency of every block of main that
        // the trace visited at least 50 times.
        let main = program.entry();
        let func = program.function(main);
        for b in func.block_ids() {
            let blk = multiscalar::ir::BlockRef::new(main, b);
            let m = measured.block_freq(blk);
            let e = estimated.block_freq(blk);
            if m * measured.func_invocations(main) < 50.0 {
                continue;
            }
            let ratio = if e > 0.0 { m / e } else { f64::INFINITY };
            assert!(
                (0.4..2.5).contains(&ratio),
                "{name}: block {b} estimated {e:.2} vs measured {m:.2}"
            );
        }
    }
}

#[test]
fn window_span_formula_tracks_measurement() {
    // The paper's closed-form window span should land in the same
    // ballpark as the time-averaged measurement.
    for name in ["applu", "go", "perl"] {
        let program = multiscalar::workloads::by_name(name).unwrap().build();
        let sel = SelectorBuilder::new(Strategy::ControlFlow)
            .max_targets(4)
            .build()
            .select(&ProgramContext::new(program));
        let trace = TraceGenerator::new(&sel.program, 9).generate(40_000);
        let stats = Simulator::new(SimConfig::eight_pu(), &sel.program, &sel.partition).run(&trace);
        let formula = stats.window_span_formula();
        let measured = stats.window_span_measured;
        assert!(
            measured > 0.2 * formula && measured < 5.0 * formula,
            "{name}: formula {formula:.0} vs measured {measured:.0}"
        );
    }
}

#[test]
fn transformed_programs_stay_traceable() {
    // Loop unrolling + call inclusion must leave a program the trace
    // generator and splitter still agree on.
    for name in ["compress", "fpppp", "li"] {
        let program = multiscalar::workloads::by_name(name).unwrap().build();
        let sel = SelectorBuilder::new(Strategy::ControlFlow)
            .max_targets(4)
            .task_size(TaskSizeParams::default())
            .build()
            .select(&ProgramContext::new(program));
        assert!(sel.program.validate().is_ok());
        let trace = TraceGenerator::new(&sel.program, 5).generate(10_000);
        let tasks = split_tasks(&trace, &sel.program, &sel.partition);
        let total: usize = tasks.iter().map(|t| t.num_insts(&trace, &sel.program)).sum();
        assert_eq!(total, trace.num_insts(), "{name}: dynamic tasks must cover the trace");
    }
}

#[test]
fn single_pu_is_a_lower_bound_for_loop_parallel_codes() {
    for name in ["swim", "mgrid", "wave5"] {
        let program = multiscalar::workloads::by_name(name).unwrap().build();
        let sel = SelectorBuilder::new(Strategy::ControlFlow)
            .max_targets(4)
            .build()
            .select(&ProgramContext::new(program));
        let trace = TraceGenerator::new(&sel.program, 21).generate(30_000);
        let one = Simulator::new(SimConfig::single_pu(), &sel.program, &sel.partition).run(&trace);
        let eight = Simulator::new(SimConfig::eight_pu(), &sel.program, &sel.partition).run(&trace);
        assert!(
            eight.ipc() > 1.5 * one.ipc(),
            "{name}: 8 PUs ({:.2}) should clearly beat 1 PU ({:.2})",
            eight.ipc(),
            one.ipc()
        );
    }
}
