//! Qualitative claims of the paper's evaluation, asserted against the
//! reproduction (shape, not absolute numbers). Each test names the
//! paper section it checks.

use multiscalar::prelude::*;

fn ipc(sel: &Selection, cfg: SimConfig, insts: usize) -> f64 {
    let trace = TraceGenerator::new(&sel.program, 0x5eed).generate(insts);
    Simulator::new(cfg, &sel.program, &sel.partition).run(&trace).ipc()
}

fn stats(sel: &Selection, cfg: SimConfig, insts: usize) -> SimStats {
    let trace = TraceGenerator::new(&sel.program, 0x5eed).generate(insts);
    Simulator::new(cfg, &sel.program, &sel.partition).run(&trace)
}

/// §4.3.1 / Figure 5: the heuristics beat basic block tasks on the
/// floating point suite (the paper's strongest, most uniform result).
#[test]
fn fp_suite_heuristics_beat_basic_blocks_on_4_pus() {
    let mut wins = 0;
    let mut total = 0;
    for w in multiscalar::workloads::fp_suite() {
        let ctx = ProgramContext::new(w.build());
        let bb = SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx);
        let cf = SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx);
        let ts = SelectorBuilder::new(Strategy::DataDependence)
            .max_targets(4)
            .task_size(TaskSizeParams::default())
            .build()
            .select(&ctx);
        let bb_ipc = ipc(&bb, SimConfig::four_pu(), 40_000);
        let best =
            ipc(&cf, SimConfig::four_pu(), 40_000).max(ipc(&ts, SimConfig::four_pu(), 40_000));
        total += 1;
        if best > bb_ipc {
            wins += 1;
        }
    }
    assert!(wins >= total - 1, "heuristics won only {wins}/{total} fp benchmarks");
}

/// §4.3.2 / Table 1: basic block tasks are small for the integer suite
/// (< 10 dynamic instructions) and larger for the floating point suite;
/// heuristic tasks are bigger than basic block tasks.
#[test]
fn task_size_shapes_match_table1() {
    let mut int_sizes = Vec::new();
    let mut fp_sizes = Vec::new();
    for w in multiscalar::workloads::suite() {
        let ctx = ProgramContext::new(w.build());
        let bb = SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx);
        let cf = SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx);
        let s_bb = stats(&bb, SimConfig::eight_pu(), 30_000);
        let s_cf = stats(&cf, SimConfig::eight_pu(), 30_000);
        assert!(
            s_cf.avg_task_size() >= 0.95 * s_bb.avg_task_size(),
            "{}: cf tasks ({:.1}) smaller than bb tasks ({:.1})",
            w.name,
            s_cf.avg_task_size(),
            s_bb.avg_task_size()
        );
        match w.class {
            multiscalar::workloads::BenchClass::Integer => int_sizes.push(s_bb.avg_task_size()),
            multiscalar::workloads::BenchClass::FloatingPoint => {
                fp_sizes.push(s_bb.avg_task_size())
            }
        }
    }
    let int_avg: f64 = int_sizes.iter().sum::<f64>() / int_sizes.len() as f64;
    let fp_avg: f64 = fp_sizes.iter().sum::<f64>() / fp_sizes.len() as f64;
    assert!(int_avg < 10.0, "integer bb tasks should be < 10 insts, got {int_avg:.1}");
    assert!(
        fp_avg > 1.5 * int_avg,
        "fp bb tasks ({fp_avg:.1}) should dwarf integer ({int_avg:.1})"
    );
}

/// §4.3.3: the effective per-branch misprediction rate (task rate
/// normalised to branches per task) is no worse than the raw task rate.
#[test]
fn normalized_branch_misprediction_is_bounded_by_task_misprediction() {
    for name in ["go", "gcc", "li", "perl"] {
        let ctx = ProgramContext::new(multiscalar::workloads::by_name(name).unwrap().build());
        let cf = SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx);
        let s = stats(&cf, SimConfig::eight_pu(), 40_000);
        assert!(
            s.br_mispred_pct_normalized() <= s.task_mispred_pct() + 1e-9,
            "{name}: br% {:.2} > task% {:.2}",
            s.br_mispred_pct_normalized(),
            s.task_mispred_pct()
        );
    }
}

/// §4.3.4 / Table 1: heuristic tasks widen the window span, and the
/// floating point suite's spans dwarf the integer suite's.
#[test]
fn window_spans_match_table1_shape() {
    let mut int_spans = Vec::new();
    let mut fp_spans = Vec::new();
    for w in multiscalar::workloads::suite() {
        let ctx = ProgramContext::new(w.build());
        let bb = SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx);
        let dd = SelectorBuilder::new(Strategy::DataDependence).max_targets(4).build().select(&ctx);
        let s_bb = stats(&bb, SimConfig::eight_pu(), 30_000);
        let s_dd = stats(&dd, SimConfig::eight_pu(), 30_000);
        assert!(
            s_dd.window_span_formula() >= 0.9 * s_bb.window_span_formula(),
            "{}: dd span ({:.0}) below bb span ({:.0})",
            w.name,
            s_dd.window_span_formula(),
            s_bb.window_span_formula()
        );
        match w.class {
            multiscalar::workloads::BenchClass::Integer => {
                int_spans.push(s_dd.window_span_formula())
            }
            multiscalar::workloads::BenchClass::FloatingPoint => {
                fp_spans.push(s_dd.window_span_formula())
            }
        }
    }
    let int_avg: f64 = int_spans.iter().sum::<f64>() / int_spans.len() as f64;
    let fp_avg: f64 = fp_spans.iter().sum::<f64>() / fp_spans.len() as f64;
    assert!(
        fp_avg > 2.0 * int_avg,
        "fp window spans ({fp_avg:.0}) should dwarf integer spans ({int_avg:.0})"
    );
}

/// §3.2: only 129.compress and 145.fpppp respond to the task-size
/// heuristic — it must actually transform them (and at 4 PUs, improve
/// them over the plain dd partition).
#[test]
fn task_size_transforms_its_responders() {
    for name in ["compress", "fpppp"] {
        let ctx = ProgramContext::new(multiscalar::workloads::by_name(name).unwrap().build());
        let plain =
            SelectorBuilder::new(Strategy::DataDependence).max_targets(4).build().select(&ctx);
        let ts = SelectorBuilder::new(Strategy::DataDependence)
            .max_targets(4)
            .task_size(TaskSizeParams::default())
            .build()
            .select(&ctx);
        let plain_stats = stats(&plain, SimConfig::four_pu(), 40_000);
        let ts_stats = stats(&ts, SimConfig::four_pu(), 40_000);
        assert!(
            ts_stats.avg_task_size() > 1.5 * plain_stats.avg_task_size(),
            "{name}: task size heuristic should grow tasks ({:.1} vs {:.1})",
            ts_stats.avg_task_size(),
            plain_stats.avg_task_size()
        );
        assert!(
            ts_stats.ipc() > plain_stats.ipc(),
            "{name}: task size heuristic should pay off at 4 PUs ({:.3} vs {:.3})",
            ts_stats.ipc(),
            plain_stats.ipc()
        );
    }
}

/// §2.3: misspeculated memory dependences squash and re-execute; the
/// synchronisation table then contains the damage.
#[test]
fn memory_speculation_squashes_and_synchronises() {
    // compress's hash table and global counters produce genuine
    // cross-task memory dependences.
    let ctx = ProgramContext::new(multiscalar::workloads::by_name("compress").unwrap().build());
    let sel = SelectorBuilder::new(Strategy::BasicBlock).build().select(&ctx);
    let trace = TraceGenerator::new(&sel.program, 0x5eed).generate(60_000);
    let s = Simulator::new(SimConfig::eight_pu(), &sel.program, &sel.partition).run(&trace);
    assert!(s.violations > 0, "compress must violate at least once");
    assert!(
        (s.violations as usize) < s.num_dyn_tasks / 4,
        "sync table failed to contain violations: {} / {} tasks",
        s.violations,
        s.num_dyn_tasks
    );
}
