//! Facade crate for the Multiscalar task-selection reproduction.
//!
//! Re-exports the workspace crates under one roof so examples, integration
//! tests and downstream users can depend on a single crate:
//!
//! * [`ir`] — the RISC-like compiler IR and CFGs,
//! * [`analysis`] — dominators, loops, dataflow, def-use chains, profiles,
//! * [`tasksel`] — the paper's task-selection heuristics,
//! * [`trace`] — dynamic instruction trace generation,
//! * [`sim`] — the cycle-level Multiscalar timing simulator,
//! * [`workloads`] — the synthetic SPEC95-shaped benchmark suite.
//!
//! # Quickstart
//!
//! ```
//! use multiscalar::prelude::*;
//!
//! // A SPEC95-shaped synthetic workload.
//! let program = multiscalar::workloads::by_name("tomcatv").unwrap().build();
//! // Analyses are computed lazily and shared through the context.
//! let ctx = ProgramContext::new(program);
//! // Partition with the control flow heuristic (max 4 task targets).
//! let sel = SelectorBuilder::new(Strategy::ControlFlow).max_targets(4).build().select(&ctx);
//! // Generate a dynamic trace and simulate the paper's 4-PU machine.
//! let trace = TraceGenerator::new(&sel.program, 7).generate(20_000);
//! let stats = Simulator::new(SimConfig::four_pu(), &sel.program, &sel.partition).run(&trace);
//! assert!(stats.ipc() > 0.0);
//! ```

pub use ms_analysis as analysis;
pub use ms_ir as ir;
pub use ms_sim as sim;
pub use ms_tasksel as tasksel;
pub use ms_trace as trace;
pub use ms_workloads as workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use ms_analysis::{Profile, ProgramContext};
    pub use ms_ir::{Program, ProgramBuilder};
    pub use ms_sim::{SimConfig, SimStats, Simulator};
    pub use ms_tasksel::{
        CostModel, Selection, SelectionPolicy, SelectorBuilder, Strategy, TaskPartition,
        TaskSelector, TaskSizeParams,
    };
    pub use ms_trace::{split_tasks, Trace, TraceGenerator};
}
